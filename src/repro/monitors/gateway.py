"""Gateway monitor: the operator's standard charging counters.

The S/P-GW counts every byte it forwards (§2.1); this is what legacy
4G/5G bills from, what the operator reports as its uplink-received record,
and what it uses to *infer* x̂e for the downlink (the gateway forwards
essentially everything the server sent, the wired hop being lossless).

The operator owns the gateway, so a selfish operator can inflate these
counters — :meth:`install_inflation` models that (validated against the
carrier LTE core in the paper: "The operator can modify its CDRs for
over-billing").
"""

from __future__ import annotations

from repro import telemetry
from repro.lte.gateway import ChargingGateway
from repro.net.packet import Direction


class GatewayMonitor:
    """Reads a gateway's cumulative charged bytes for one direction."""

    def __init__(self, gateway: ChargingGateway, direction: Direction) -> None:
        self.gateway = gateway
        self.direction = direction
        self._inflation = 1.0
        self._telemetry = tel = telemetry.current()
        self._m_tamper = (
            tel.bind_counter("tamper_detections", layer="gateway")
            if tel is not None
            else None
        )
        self._tamper_reported = False

    def install_inflation(self, factor: float) -> None:
        """Selfish operator: report ``factor`` times the true count."""
        if factor < 0:
            raise ValueError(f"negative inflation factor: {factor}")
        self._inflation = float(factor)

    def read_bytes(self) -> int:
        """Cumulative charged bytes (inflation applied, if installed)."""
        true = self.read_true_bytes()
        reported = int(true * self._inflation)
        tel = self._telemetry
        if (
            tel is not None
            and not self._tamper_reported
            and self._inflation != 1.0
            and reported != true
        ):
            self._tamper_reported = True
            self._m_tamper.inc()
            tel.event(
                "gateway",
                "tamper_detected",
                direction=self.direction.value,
                reported_bytes=reported,
                true_bytes=true,
                inflation=self._inflation,
            )
        return reported

    def read_true_bytes(self) -> int:
        """Ground-truth gateway count (simulation-only view)."""
        if self.direction is Direction.UPLINK:
            return self.gateway.charged_uplink_bytes
        return self.gateway.charged_downlink_bytes
