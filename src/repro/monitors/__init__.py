"""Traffic monitors: how each party measures (x̂e, x̂o) — §5.4.

Four collection mechanisms, with the tamper surface each exposes:

===========================  ==========================  ==================
Monitor                      Measures                    Tamperable by
===========================  ==========================  ==================
:class:`DeviceApiMonitor`    device OS counters          edge (strawman 1)
:class:`ServerMonitor`       server netstat counters     edge (its own box)
:class:`GatewayMonitor`      gateway CDR counters        operator
:class:`RrcCounterMonitor`   modem hardware counters     nobody (TLC §5.4)
===========================  ==========================  ==================

Every monitor reads cumulative bytes on *its owner's clock*; cycle
snapshots taken on skewed clocks are where Figure 18's record errors come
from (:class:`CycleSampler`).
"""

from repro.monitors.base import CycleSampler, MonitorReading
from repro.monitors.device import DeviceApiMonitor
from repro.monitors.gateway import GatewayMonitor
from repro.monitors.rrc_counter import RrcCounterMonitor
from repro.monitors.server import ServerMonitor
from repro.monitors.tamper import (
    ResetTamper,
    UnderReportTamper,
    tamper_fraction,
)

__all__ = [
    "CycleSampler",
    "MonitorReading",
    "DeviceApiMonitor",
    "GatewayMonitor",
    "RrcCounterMonitor",
    "ServerMonitor",
    "ResetTamper",
    "UnderReportTamper",
    "tamper_fraction",
]
