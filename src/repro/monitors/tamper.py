"""Tamper models: what a selfish party does to its counters (§3.3, §5.4).

The paper names two concrete edge-side manipulations:

- directly modifying ``netstat``/``TrafficStats`` to report less
  (:class:`UnderReportTamper`), and
- resetting the billing counters mid-cycle so usage "starts over"
  (:class:`ResetTamper`, the no-root trick from [31]).

Both are callables matching :class:`repro.lte.ue.OsTrafficStats`'s tamper
hook signature: true cumulative bytes in, reported bytes out.
"""

from __future__ import annotations


class UnderReportTamper:
    """Report only ``fraction`` of the true counter value."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"report fraction out of [0,1]: {fraction}")
        self.fraction = float(fraction)

    def __call__(self, true_bytes: int) -> int:
        return int(true_bytes * self.fraction)


class ResetTamper:
    """Zero the counter as of a chosen baseline (bill-cycle reset trick).

    ``arm()`` captures the current true value; readings afterwards report
    only bytes accumulated since the reset.
    """

    def __init__(self) -> None:
        self._baseline = 0

    def arm(self, current_true_bytes: int) -> None:
        """Perform the reset at the current counter value."""
        if current_true_bytes < 0:
            raise ValueError("counter values are non-negative")
        self._baseline = int(current_true_bytes)

    def __call__(self, true_bytes: int) -> int:
        return max(0, true_bytes - self._baseline)


def tamper_fraction(true_bytes: int, reported_bytes: int) -> float:
    """How much of the true volume the report hides (0 = honest)."""
    if true_bytes <= 0:
        return 0.0
    return max(0.0, 1.0 - reported_bytes / true_bytes)
