"""Discrete-event simulation kernel used by every substrate in this repo.

The kernel is intentionally small: a :class:`~repro.sim.clock.Clock` that
only moves when the scheduler advances it, an event queue
(:class:`~repro.sim.events.EventLoop`) with deterministic tie-breaking, and
seeded random-stream helpers (:mod:`repro.sim.rng`) so that every experiment
in the paper reproduction is replayable bit-for-bit from a single seed.
"""

from repro.sim.clock import Clock, SkewedClock
from repro.sim.events import Event, EventLoop, SimulationError
from repro.sim.rng import RngStreams, derive_seed

__all__ = [
    "Clock",
    "SkewedClock",
    "Event",
    "EventLoop",
    "SimulationError",
    "RngStreams",
    "derive_seed",
]
