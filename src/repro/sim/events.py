"""Deterministic discrete-event loop.

Every substrate (wireless channel, LTE gateways, application workloads,
negotiation protocol) schedules callbacks on one shared :class:`EventLoop`.
Ties at the same timestamp are broken by insertion order, so a run is a
pure function of (seed, scenario parameters).

Hot-path layout: the heap stores plain
``(time, sequence, event, callback, args)`` tuples, so ``heapq`` orders
entries with C tuple comparison instead of a generated dataclass
``__lt__`` (the single biggest per-event cost in the old layout — a
million-packet scenario performs tens of millions of heap comparisons).
``sequence`` is unique per loop, so comparison never reaches the later
elements and the ``(time, sequence)`` tie-break is *exactly* the old
ordering: seeded runs are byte-identical.

Two scheduling APIs share that heap and one sequence counter:

- :meth:`EventLoop.schedule_at` / :meth:`EventLoop.schedule_in` return a
  cancellable :class:`Event` handle — use these for timers that might be
  cancelled (retransmission timers, timeouts).
- :meth:`EventLoop.call_at` / :meth:`EventLoop.call_in` are the
  fire-and-forget fast path for per-packet deliveries: no handle object
  is allocated and the callback's arguments ride in the heap entry, so
  call sites don't build a closure per packet.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


class Event:
    """A scheduled callback.

    Ordered by ``(time, sequence)`` — the heap tuple, not the object —
    so same-time events fire in the order they were scheduled.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "label")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], Any],
        cancelled: bool = False,
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = cancelled
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(t={self.time:.6f}, seq={self.sequence}"
            f"{f', {self.label}' if self.label else ''}{state})"
        )


class PeriodicEvent:
    """A self-rescheduling timer created by :meth:`EventLoop.schedule_every`.

    Each firing schedules the next one, so cancellation takes effect at
    the next tick boundary with O(1) work (the underlying one-shot event
    is lazily deleted like any other cancelled entry).
    """

    __slots__ = ("loop", "period", "callback", "label", "cancelled", "_event")

    def __init__(
        self,
        loop: "EventLoop",
        period: float,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.loop = loop
        self.period = period
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._event: Event | None = None

    def _arm(self, at: float) -> None:
        self._event = self.loop.schedule_at(at, self._fire, label=self.label)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self._arm(self.loop.clock._now + self.period)
        self.callback()

    def cancel(self) -> None:
        """Stop all future firings."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class EventLoop:
    """A minimal priority-queue event scheduler with a simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        from repro.sim.clock import Clock

        self.clock = Clock(start)
        # Entries are (time, sequence, event-or-None, callback, args);
        # event is None for the call_at/call_in fast path.
        self._queue: list[tuple[float, int, Event | None, Callable[..., Any], tuple]] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._exhausted = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        # Reads clock storage directly: this property is consulted for
        # every packet timestamp, so the extra Clock.now property hop
        # shows up in profiles.
        return self.clock._now

    @property
    def processed_events(self) -> int:
        """How many callbacks have *fired* so far (for diagnostics).

        Cancelled events are skipped by lazy deletion and are never
        counted here — the number reflects work actually done.
        """
        return self._processed

    @property
    def exhausted(self) -> bool:
        """True once :meth:`run` has drained the queue to completion."""
        return self._exhausted

    def _ensure_alive(self, action: str) -> None:
        if self._exhausted:
            raise SimulationError(
                f"cannot {action}: this EventLoop already ran to "
                f"exhaustion at t={self.clock.now:.9f}; a finished "
                f"simulation must not be driven again — build a new "
                f"EventLoop for a new run"
            )

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if self._exhausted:
            self._ensure_alive(f"schedule {label or callback!r}")
        time = float(time)
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.9f} < "
                f"{self.clock.now:.9f} ({label or callback!r})"
            )
        sequence = next(self._sequence)
        event = Event(time, sequence, callback, label=label)
        heapq.heappush(self._queue, (time, sequence, event, callback, ()))
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock._now + delay, callback, label)

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget callback at absolute time ``time``.

        The fast path for per-packet work: no :class:`Event` handle is
        allocated (the callback cannot be cancelled) and positional
        ``args`` are stored in the heap entry, so hot call sites don't
        build a per-packet closure.  Ordering is identical to
        :meth:`schedule_at` — both draw from the same sequence counter.
        """
        if self._exhausted:
            self._ensure_alive(f"schedule {callback!r}")
        time = float(time)
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.9f} < "
                f"{self.clock.now:.9f} ({callback!r})"
            )
        heapq.heappush(
            self._queue, (time, next(self._sequence), None, callback, args)
        )

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget callback after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        if self._exhausted:
            self._ensure_alive(f"schedule {callback!r}")
        # now + a non-negative delay can never land in the past, so the
        # call_at guard is skipped (this runs once per packet hop).
        heapq.heappush(
            self._queue,
            (self.clock._now + delay, next(self._sequence), None, callback, args),
        )

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], Any],
        label: str = "",
        start_after: float | None = None,
    ) -> "PeriodicEvent":
        """Schedule ``callback`` every ``period`` seconds, cancellable.

        The scheduling hook used by periodic maintenance work — gateway
        counter checkpointing, fault-injection supervision — that must
        not accumulate per-tick handles at call sites.  The first firing
        happens after ``start_after`` seconds (default: one period).
        Cancelling the returned handle stops all future firings.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period: {period}")
        handle = PeriodicEvent(self, float(period), callback, label)
        delay = period if start_after is None else start_after
        if delay < 0:
            raise SimulationError(f"negative start delay: {delay}")
        handle._arm(self.clock._now + delay)
        return handle

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(
            1
            for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        )

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        self._ensure_alive("step")
        queue = self._queue
        while queue:
            time, _, event, callback, args = heapq.heappop(queue)
            if event is not None and event.cancelled:
                continue
            self.clock.advance_to(time)
            self._processed += 1
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this time
            (the clock is advanced to ``until``).  ``None`` runs to
            queue exhaustion, after which driving the loop again
            (run/step/schedule) raises :class:`SimulationError`.
        max_events:
            Safety valve against runaway self-scheduling loops.
        """
        self._ensure_alive("run")
        # Local aliases: this loop body runs once per simulated event,
        # which for campaign grids means hundreds of millions of
        # iterations — every attribute lookup removed here is measurable.
        queue = self._queue
        pop = heapq.heappop
        clock = self.clock
        fired = 0
        while queue:
            time, _, event, callback, args = queue[0]
            if event is not None and event.cancelled:
                pop(queue)
                continue
            if until is not None and time > until:
                break
            if fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {fired} events"
                )
            pop(queue)
            # Heap order makes times nondecreasing, so this cannot move
            # the clock backwards; assign directly instead of paying
            # advance_to's monotonicity check per event.
            clock._now = time
            callback(*args)
            fired += 1
        self._processed += fired
        if until is not None and clock._now < until:
            clock._now = float(until)
        if until is None:
            # An explicit run-to-exhaustion ends the simulation's life;
            # re-driving a finished loop is a caller bug.
            self._exhausted = True

