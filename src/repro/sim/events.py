"""Deterministic discrete-event loop.

Every substrate (wireless channel, LTE gateways, application workloads,
negotiation protocol) schedules callbacks on one shared :class:`EventLoop`.
Ties at the same timestamp are broken by insertion order, so a run is a
pure function of (seed, scenario parameters).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, sequence)`` so same-time events fire in the order
    they were scheduled.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self.cancelled = True


class EventLoop:
    """A minimal priority-queue event scheduler with a simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        from repro.sim.clock import Clock

        self.clock = Clock(start)
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._exhausted = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """How many events have fired so far (for diagnostics)."""
        return self._processed

    @property
    def exhausted(self) -> bool:
        """True once :meth:`run` has drained the queue to completion."""
        return self._exhausted

    def _ensure_alive(self, action: str) -> None:
        if self._exhausted:
            raise SimulationError(
                f"cannot {action}: this EventLoop already ran to "
                f"exhaustion at t={self.clock.now:.9f}; a finished "
                f"simulation must not be driven again — build a new "
                f"EventLoop for a new run"
            )

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        self._ensure_alive(f"schedule {label or callback!r}")
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.9f} < "
                f"{self.clock.now:.9f} ({label or callback!r})"
            )
        event = Event(time, next(self._sequence), callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        self._ensure_alive("step")
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this time
            (the clock is advanced to ``until``).  ``None`` runs to
            queue exhaustion, after which driving the loop again
            (run/step/schedule) raises :class:`SimulationError`.
        max_events:
            Safety valve against runaway self-scheduling loops.
        """
        self._ensure_alive("run")
        fired = 0
        while self._queue:
            if fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {fired} events"
                )
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                break
            self.step()
            fired += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        if until is None:
            # An explicit run-to-exhaustion ends the simulation's life;
            # re-driving a finished loop is a caller bug.
            self._exhausted = True

    def _peek(self) -> Event | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
