"""Chunked draws from a deterministic RNG, preserving the draw sequence.

Per-packet loss decisions are the highest-frequency consumers of
randomness in the simulator: the wireless channel, the congested
bottleneck queues, and lossy links each draw one uniform per packet.
Calling ``random.Random.random()`` through an attribute lookup per
packet is pure interpreter overhead; :class:`ChunkedRandom` instead
prefetches uniforms in blocks (one C-level call per draw, but batched
through a list built with the *bound* method, then served by cheap list
indexing) and reimplements the derived draws the simulator uses
(``expovariate``) on top of the same buffered uniform stream with
bit-identical arithmetic to CPython's.

The contract that keeps seeded runs byte-identical:

- The wrapper must be the **exclusive** consumer of the wrapped
  ``random.Random`` from construction onward (every component already
  owns a dedicated named stream — see :mod:`repro.sim.rng`), so
  prefetching ahead of simulated time cannot steal draws from anyone.
- Every draw type is derived from ``random()`` exactly as CPython
  derives it, so the n-th draw returns the same float the unwrapped
  stream would have produced, regardless of how ``random()`` and
  ``expovariate()`` calls interleave.

``block_size=1`` degenerates to unchunked per-call behaviour, which is
what the determinism suite compares against.
"""

from __future__ import annotations

import random
from math import log as _log

#: Default prefetch depth.  Large enough to amortize the refill, small
#: enough that an idle scenario never burns visible memory on uniforms.
DEFAULT_BLOCK_SIZE = 512


class ChunkedRandom:
    """Serve a ``random.Random``'s uniform stream from prefetched blocks.

    Only the draw types the packet path uses are exposed; anything else
    would silently bypass the buffer and corrupt the sequence, so there
    is deliberately no ``__getattr__`` passthrough.
    """

    __slots__ = ("_rng", "_block_size", "_buffer", "_next")

    def __init__(
        self,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        # A float block size would silently truncate in the list refill
        # and a non-positive one would make every draw refill forever, so
        # both are rejected loudly (bool is excluded: True == 1 is a type
        # confusion, not a usable block size).
        if isinstance(block_size, bool) or not isinstance(block_size, int):
            raise ValueError(
                f"block size must be an int, got "
                f"{type(block_size).__name__}: {block_size!r}"
            )
        if block_size < 1:
            raise ValueError(f"block size must be >= 1: {block_size}")
        self._rng = rng
        self._block_size = block_size
        self._buffer: list[float] = []
        self._next = 0

    def random(self) -> float:
        """The next uniform in [0, 1) — identical to the wrapped stream."""
        i = self._next
        buffer = self._buffer
        if i >= len(buffer):
            draw = self._rng.random
            buffer = [draw() for _ in range(self._block_size)]
            self._buffer = buffer
            i = 0
        self._next = i + 1
        return buffer[i]

    def expovariate(self, lambd: float) -> float:
        """Exponential draw, bit-identical to ``random.Random``'s.

        CPython computes ``-log(1 - random()) / lambd``; doing the same
        float operations on the same buffered uniform reproduces the
        exact value the unwrapped stream would have returned.
        """
        return -_log(1.0 - self.random()) / lambd

    @property
    def prefetched(self) -> int:
        """Uniforms drawn from the source but not yet served."""
        return len(self._buffer) - self._next
