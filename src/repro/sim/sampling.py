"""Chunked draws from a deterministic RNG, preserving the draw sequence.

Per-packet loss decisions are the highest-frequency consumers of
randomness in the simulator: the wireless channel, the congested
bottleneck queues, and lossy links each draw one uniform per packet.
Calling ``random.Random.random()`` through an attribute lookup per
packet is pure interpreter overhead; :class:`ChunkedRandom` instead
prefetches uniforms in blocks (one C-level call per draw, but batched
through a list built with the *bound* method, then served by cheap list
indexing) and reimplements the derived draws the simulator uses
(``expovariate``) on top of the same buffered uniform stream with
bit-identical arithmetic to CPython's.

:meth:`ChunkedRandom.random_block` is the fluid-mode entry point: the
next ``n`` uniforms of the same stream as one numpy array, so a whole
frame's loss decisions become a single vectorized threshold compare.
The array holds float-for-float the values ``n`` successive
``random()`` calls would have returned (Mersenne doubles pass through
``np.float64`` unchanged), which is what keeps packet and fluid mode
byte-identical under one seed.

The contract that keeps seeded runs byte-identical:

- The wrapper must be the **exclusive** consumer of the wrapped
  ``random.Random`` from construction onward (every component already
  owns a dedicated named stream — see :mod:`repro.sim.rng`), so
  prefetching ahead of simulated time cannot steal draws from anyone.
- Every draw type is derived from ``random()`` exactly as CPython
  derives it, so the n-th draw returns the same float the unwrapped
  stream would have produced, regardless of how ``random()`` and
  ``expovariate()`` calls interleave.

``block_size=1`` degenerates to unchunked per-call behaviour, which is
what the determinism suite compares against.
"""

from __future__ import annotations

import random
from math import log as _log

import numpy as np

#: Default prefetch depth.  Large enough to amortize the refill, small
#: enough that an idle scenario never burns visible memory on uniforms.
DEFAULT_BLOCK_SIZE = 512


class ChunkedRandom:
    """Serve a ``random.Random``'s uniform stream from prefetched blocks.

    Only the draw types the packet path uses are exposed; anything else
    would silently bypass the buffer and corrupt the sequence, so there
    is deliberately no ``__getattr__`` passthrough.
    """

    __slots__ = ("_rng", "_block_size", "_buffer", "_next", "_np_buffer")

    def __init__(
        self,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        # A float block size would silently truncate in the list refill
        # and a non-positive one would make every draw refill forever, so
        # both are rejected loudly (bool is excluded: True == 1 is a type
        # confusion, not a usable block size).
        if isinstance(block_size, bool) or not isinstance(block_size, int):
            raise ValueError(
                f"block size must be an int, got "
                f"{type(block_size).__name__}: {block_size!r}"
            )
        if block_size < 1:
            raise ValueError(f"block size must be >= 1: {block_size}")
        self._rng = rng
        self._block_size = block_size
        self._buffer: list[float] = []
        self._next = 0
        # Lazy float64 mirror of ``_buffer``: built at most once per
        # refill, so steady block consumption serves cheap array views
        # instead of converting a fresh list per call.
        self._np_buffer: np.ndarray | None = None

    def random(self) -> float:
        """The next uniform in [0, 1) — identical to the wrapped stream."""
        i = self._next
        buffer = self._buffer
        if i >= len(buffer):
            draw = self._rng.random
            buffer = [draw() for _ in range(self._block_size)]
            self._buffer = buffer
            self._np_buffer = None
            i = 0
        self._next = i + 1
        return buffer[i]

    def random_block(self, n: int) -> np.ndarray:
        """The next ``n`` uniforms as one float64 array (a read-only
        view of the prefetch buffer — consume it before the next draw).

        Serves already-prefetched values first; when the buffer runs
        short it is refilled like :meth:`random` refills (at least
        ``block_size`` fresh source draws), so interleaving
        ``random()``, ``expovariate()``, and ``random_block()`` calls
        always consumes the wrapped stream in plain call order — the
        k-th uniform served is the k-th uniform the unwrapped
        ``random.Random`` would have produced.  The float64 mirror of
        the buffer is built once per refill, so steady block traffic
        pays one cheap slice per call instead of a list-to-array
        conversion.
        """
        if n < 0:
            raise ValueError(f"block length must be >= 0: {n}")
        i = self._next
        buffer = self._buffer
        if len(buffer) - i < n:
            draw = self._rng.random
            refill = n - (len(buffer) - i)
            if refill < self._block_size:
                refill = self._block_size
            tail = buffer[i:]
            tail += [draw() for _ in range(refill)]
            self._buffer = buffer = tail
            self._np_buffer = None
            i = 0
        mirror = self._np_buffer
        if mirror is None:
            self._np_buffer = mirror = np.array(buffer, dtype=np.float64)
        self._next = i + n
        return mirror[i : i + n]

    def expovariate(self, lambd: float) -> float:
        """Exponential draw, bit-identical to ``random.Random``'s.

        CPython computes ``-log(1 - random()) / lambd``; doing the same
        float operations on the same buffered uniform reproduces the
        exact value the unwrapped stream would have returned.
        """
        return -_log(1.0 - self.random()) / lambd

    @property
    def prefetched(self) -> int:
        """Uniforms drawn from the source but not yet served."""
        return len(self._buffer) - self._next
