"""Simulated clocks.

All timestamps in the reproduction come from a :class:`Clock` owned by the
event loop, never from the wall clock.  :class:`SkewedClock` wraps a
reference clock with a fixed offset plus drift, which is how we model the
edge vendor and the cellular operator reading *different* local times for
the same charging-cycle boundary (the error source behind Figure 18).
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing simulated clock.

    The clock starts at ``start`` (seconds) and only moves via
    :meth:`advance_to`.  Moving backwards raises ``ValueError`` so that a
    buggy event ordering is caught immediately instead of corrupting
    downstream charging records.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t`` seconds."""
        if t < self._now:
            raise ValueError(
                f"clock cannot move backwards: {t:.9f} < {self._now:.9f}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0:
            raise ValueError(f"negative clock step: {dt}")
        self._now += float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"


class SkewedClock:
    """A view of a reference clock with constant offset and linear drift.

    ``local = reference + offset + drift_ppm * 1e-6 * reference``

    Parameters
    ----------
    reference:
        The authoritative simulated clock (usually the event loop's).
    offset:
        Constant offset in seconds (positive means this clock runs ahead).
    drift_ppm:
        Linear drift in parts-per-million of elapsed reference time.
    """

    def __init__(
        self, reference: Clock, offset: float = 0.0, drift_ppm: float = 0.0
    ) -> None:
        self._reference = reference
        self.offset = float(offset)
        self.drift_ppm = float(drift_ppm)

    @property
    def now(self) -> float:
        """Local (skewed) time in seconds."""
        ref = self._reference.now
        return ref + self.offset + self.drift_ppm * 1e-6 * ref

    def to_local(self, reference_time: float) -> float:
        """Convert a reference timestamp into this clock's local time."""
        return (
            reference_time
            + self.offset
            + self.drift_ppm * 1e-6 * reference_time
        )

    def to_reference(self, local_time: float) -> float:
        """Convert a local timestamp back to reference time (inverse map)."""
        scale = 1.0 + self.drift_ppm * 1e-6
        return (local_time - self.offset) / scale

    def synchronize(self, residual_offset: float = 0.0) -> None:
        """Discipline the clock as NTP would, leaving ``residual_offset``.

        A perfect sync leaves ``offset == 0``; real NTP leaves a few
        milliseconds, which is what the caller passes in.
        """
        self.offset = float(residual_offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SkewedClock(offset={self.offset:+.6f}s, "
            f"drift={self.drift_ppm:+.3f}ppm)"
        )
