"""Seeded random-stream management.

Each stochastic component (channel, congestion, workload jitter, strategy
randomness, crypto nonces-for-tests) draws from its *own* named stream
derived from one experiment seed.  Adding a new component therefore never
perturbs the draws seen by existing ones, which keeps regression baselines
stable as the reproduction grows.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    Uses SHA-256 so unrelated names give statistically independent seeds,
    and the mapping is stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngStreams:
    """A factory of independent, named ``random.Random`` streams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, *names: str | int) -> random.Random:
        """Return the stream for the given name path, creating it once."""
        key = "/".join(str(n) for n in names)
        if key not in self._streams:
            self._streams[key] = random.Random(
                derive_seed(self.root_seed, *names)
            )
        return self._streams[key]

    def fork(self, *names: str | int) -> "RngStreams":
        """A child factory rooted under the given path."""
        return RngStreams(derive_seed(self.root_seed, *names))
