"""Quota enforcement: speed throttling on "unlimited" plans.

§2.1: "Some offer the 'unlimited' data plan, but throttle the speed if
the usage exceeds some quota (e.g. 128Kbps after 15GB)."  And §1: even
unlimited-plan edge apps care about the charging gap because a gap
*advances the quota clock* — over-counted bytes bring the throttle
forward.

:class:`ThrottlingEnforcer` is a pipeline element the operator deploys
after the charging gateway: it counts charged bytes against the plan's
quota and, once exceeded, shapes traffic to the throttled rate with a
token bucket (excess beyond the bucket's queue is dropped, as a real
shaper's tail-drop would).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro import telemetry
from repro.charging.policy import ChargingPolicy
from repro.net.block import PacketBlock
from repro.net.interval import IntervalFlow
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

Deliver = Callable[[Packet], None]
DeliverBlock = Callable[[PacketBlock], None]


class ThrottlingEnforcer:
    """Token-bucket shaper armed by quota exhaustion."""

    def __init__(
        self,
        loop: EventLoop,
        policy: ChargingPolicy,
        queue_limit: int = 64,
        name: str = "throttle",
    ) -> None:
        if policy.quota_bytes is None:
            raise ValueError(
                "throttling enforcer needs a policy with a quota"
            )
        self.loop = loop
        self.policy = policy
        self.queue_limit = int(queue_limit)
        self.name = name
        self._receivers: list[Deliver] = []
        self._block_receivers: list[DeliverBlock] = []
        self._queue: deque[Packet] = deque()
        self._next_release = 0.0
        self._draining = False
        self.charged_bytes = 0
        self.throttled_packets = 0
        self.dropped_packets = 0
        self._telemetry = tel = telemetry.current()
        self._throttle_announced = False
        # Bound per-direction counter handles; pass-through bytes burst-
        # aggregate, tail drops are rare enough to count per packet.
        self._m_in = self._m_out = self._m_drop = None
        self._agg_in = self._agg_out = None
        if tel is not None:
            self._m_in = {
                d: tel.bind_counter("bytes_in", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_out = {
                d: tel.bind_counter("bytes_out", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_drop = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="quota_throttle",
                )
                for d in Direction
            }
            if tel.burst_aggregation:
                self._agg_in = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_in.items()
                }
                self._agg_out = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_out.items()
                }
                accumulators = (
                    *self._agg_in.values(),
                    *self._agg_out.values(),
                )
                tel.on_flush(
                    lambda: telemetry.flush_all(accumulators)
                )

    def connect(self, receiver: Deliver) -> None:
        """Attach the downstream element."""
        self._receivers.append(receiver)

    def connect_block(self, receiver: DeliverBlock) -> None:
        """Attach a downstream element accepting whole packet blocks."""
        self._block_receivers.append(receiver)

    @property
    def throttling(self) -> bool:
        """True once the quota has been exceeded."""
        return self.policy.should_throttle(self.charged_bytes)

    def send(self, packet: Packet) -> bool:
        """Pass a packet through the shaper."""
        self.charged_bytes += packet.size
        agg = self._agg_in
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_in is not None:
            self._m_in[packet.direction].inc(packet.size)
        if not self.throttling:
            self._deliver(packet)
            return True

        # Past the quota: shape to throttle_bps.
        tel = self._telemetry
        if tel is not None and not self._throttle_announced:
            self._throttle_announced = True
            tel.event(
                self.name, "throttle_armed", charged_bytes=self.charged_bytes
            )
        if len(self._queue) >= self.queue_limit:
            self.dropped_packets += 1
            if self._m_drop is not None:
                self._m_drop[packet.direction].inc(packet.size)
            return False
        self.throttled_packets += 1
        self._queue.append(packet)
        self._drain()
        return True

    def send_block(self, block: PacketBlock) -> int:
        """Pass a whole frame through the shaper (fluid mode).

        If charging the entire block still leaves the plan under quota,
        no prefix of it could have armed the throttle either (quota
        checks are monotone in charged bytes), so the block passes
        through in one step.  Anywhere near or past the quota boundary
        the block drops back to per-packet :meth:`send` calls, which
        replicates packet mode's shaping, tail-drop, and trace events
        exactly.
        """
        if not self.policy.should_throttle(self.charged_bytes + block.size):
            self.charged_bytes += block.size
            agg = self._agg_in
            if agg is not None:
                acc = agg[block.direction]
                acc.bytes += block.size
                acc.packets += block.count
            elif self._m_in is not None:
                self._m_in[block.direction].inc(block.size)
            self._deliver_block(block)
            return block.count
        accepted = 0
        for packet in block.packets():
            if self.send(packet):
                accepted += 1
        return accepted

    def quota_crossing_time(self, bytes_per_second: float) -> float | None:
        """Seconds until the quota boundary at a constant offered rate.

        The analytic scheduler treats the quota crossing as a
        *discontinuity*: instead of stepping traffic until the throttle
        arms, it solves ``(quota − charged) / rate`` and schedules the
        crossing instant directly.  Returns ``0.0`` when the quota is
        already exhausted and ``None`` when it can never be reached
        (non-positive rate).
        """
        remaining = self.policy.quota_bytes - self.charged_bytes
        if remaining <= 0:
            return 0.0
        if bytes_per_second <= 0:
            return None
        return remaining / bytes_per_second

    def send_interval(
        self, flow: IntervalFlow, duration: float
    ) -> IntervalFlow:
        """Advance an aggregate interval through the shaper.

        Callers (the analytic driver) split intervals at the instant
        reported by :meth:`quota_crossing_time`, so a single call is
        either entirely under quota (pass-through, mirroring
        :meth:`send_block`'s fast path) or entirely throttled.  The
        throttled branch is the token bucket in closed form: the bucket
        releases ``throttle_bps × duration / 8`` bytes over the
        interval and the rest tail-drops.  The packet path's bounded
        queue carries at most ``queue_limit`` packets across interval
        edges; analytic shaping drops that carry (a divergence bounded
        by one queue's worth of packets, inside the documented
        tolerance).
        """
        if flow.is_empty:
            return flow
        self.charged_bytes += flow.bytes
        if self._m_in is not None:
            self._m_in[flow.direction].inc(flow.bytes)
        if not self.throttling:
            if self._m_out is not None:
                self._m_out[flow.direction].inc(flow.bytes)
            return flow
        tel = self._telemetry
        if tel is not None and not self._throttle_announced:
            self._throttle_announced = True
            tel.event(
                self.name, "throttle_armed", charged_bytes=self.charged_bytes
            )
        allowance = int(duration * self.policy.throttle_bps / 8)
        if allowance >= flow.bytes:
            self.throttled_packets += flow.packets
            if self._m_out is not None:
                self._m_out[flow.direction].inc(flow.bytes)
            return flow
        # Shape: pass the head that fits the bucket, tail-drop the rest.
        mean_size = flow.bytes / flow.packets
        head_packets = min(flow.packets, int(allowance / mean_size))
        head, rest = flow.take(head_packets)
        self.throttled_packets += head.packets
        self.dropped_packets += rest.packets
        if self._m_drop is not None:
            self._m_drop[flow.direction].inc(rest.bytes)
        if not head.is_empty and self._m_out is not None:
            self._m_out[flow.direction].inc(head.bytes)
        return head

    def _drain(self) -> None:
        if self._draining or not self._queue:
            return
        self._draining = True
        release_at = max(self.loop.now, self._next_release)
        packet = self._queue[0]
        serialization = packet.size * 8 / self.policy.throttle_bps
        self._next_release = release_at + serialization
        self.loop.schedule_at(
            self._next_release, self._release_head, label=f"{self.name}-tx"
        )

    def _release_head(self) -> None:
        self._draining = False
        if not self._queue:
            return
        packet = self._queue.popleft()
        self._deliver(packet)
        self._drain()

    def _deliver(self, packet: Packet) -> None:
        agg = self._agg_out
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_out is not None:
            self._m_out[packet.direction].inc(packet.size)
        for receiver in self._receivers:
            receiver(packet)

    def _deliver_block(self, block: PacketBlock) -> None:
        agg = self._agg_out
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += block.size
            acc.packets += block.count
        elif self._m_out is not None:
            self._m_out[block.direction].inc(block.size)
        receivers = self._block_receivers
        if receivers:
            for receiver in receivers:
                receiver(block)
        else:
            for packet in block.packets():
                for receiver in self._receivers:
                    receiver(packet)
