"""Charging data records, matching Trace 1 of the paper.

A CDR is what the 4G gateway emits per subscriber per reporting interval:
IMSI, gateway address, charging id, sequence number, first/last usage
times, and uplink/downlink byte volumes.  Two encodings are provided:

- :meth:`ChargingDataRecord.to_xml` — the human-readable form shown in
  Trace 1 (OpenEPC emits this),
- :meth:`ChargingDataRecord.to_bytes` — a compact binary form whose size
  (34 bytes) matches the "LTE CDR" row of the paper's Figure 17 message
  size table.
"""

from __future__ import annotations

import struct
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass
from datetime import datetime, timezone
from xml.sax.saxutils import escape

from repro.lte.identifiers import Imsi

# Binary layout: 8B TBCD IMSI + 4B gateway IPv4 + 4B charging id +
# 4B sequence + 4B time-of-first-usage + 2B duration + 4B UL + 4B DL = 34.
_BINARY_LAYOUT = struct.Struct(">8s4sIIIHII")
BINARY_CDR_SIZE = _BINARY_LAYOUT.size
assert BINARY_CDR_SIZE == 34


def _format_time(epoch: float) -> str:
    """Render an epoch timestamp the way OpenEPC does in Trace 1."""
    dt = datetime.fromtimestamp(epoch, tz=timezone.utc)
    return dt.strftime("%Y-%m-%d %H:%M:%S")


def _parse_time(text: str) -> float:
    """Parse a Trace-1 timestamp back to an epoch."""
    dt = datetime.strptime(text, "%Y-%m-%d %H:%M:%S").replace(
        tzinfo=timezone.utc
    )
    return dt.timestamp()


def _ipv4_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    return bytes(int(p) for p in parts)


def _ipv4_from_bytes(data: bytes) -> str:
    return ".".join(str(b) for b in data)


@dataclass(frozen=True)
class ChargingDataRecord:
    """One gateway charging record (Trace 1 fields)."""

    served_imsi: Imsi
    gateway_address: str
    charging_id: int
    sequence_number: int
    time_of_first_usage: float
    time_of_last_usage: float
    uplink_bytes: int
    downlink_bytes: int

    def __post_init__(self) -> None:
        if self.uplink_bytes < 0 or self.downlink_bytes < 0:
            raise ValueError("CDR volumes must be non-negative")
        if self.time_of_last_usage < self.time_of_first_usage:
            raise ValueError("CDR usage interval is inverted")

    @property
    def time_usage(self) -> int:
        """Usage duration in whole seconds (Trace 1's ``timeUsage``)."""
        return int(round(self.time_of_last_usage - self.time_of_first_usage))

    @property
    def total_bytes(self) -> int:
        """Uplink plus downlink volume."""
        return self.uplink_bytes + self.downlink_bytes

    def to_xml(self) -> str:
        """The OpenEPC-style XML rendering from Trace 1."""
        imsi_hex = self.served_imsi.to_tbcd().hex(" ").upper()
        return (
            "<chargingRecord>\n"
            f"  <servedIMSI>{imsi_hex}</servedIMSI>\n"
            f"  <gatewayAddress>{escape(self.gateway_address)}</gatewayAddress>\n"
            f"  <chargingID>{self.charging_id}</chargingID>\n"
            f"  <SequenceNumber>{self.sequence_number}</SequenceNumber>\n"
            f"  <timeOfFirstUsage>{_format_time(self.time_of_first_usage)}"
            "</timeOfFirstUsage>\n"
            f"  <timeOfLastUsage>{_format_time(self.time_of_last_usage)}"
            "</timeOfLastUsage>\n"
            f"  <timeUsage>{self.time_usage}</timeUsage>\n"
            f"  <datavolumeUplink>{self.uplink_bytes}</datavolumeUplink>\n"
            f"  <datavolumeDownlink>{self.downlink_bytes}"
            "</datavolumeDownlink>\n"
            "</chargingRecord>"
        )

    @classmethod
    def from_xml(cls, text: str) -> "ChargingDataRecord":
        """Parse an OpenEPC-style charging record (Trace 1 format).

        Lets the charging pipeline ingest real core dumps; round-trips
        with :meth:`to_xml`.
        """
        try:
            root = ElementTree.fromstring(text)
        except ElementTree.ParseError as exc:
            raise ValueError(f"malformed charging record XML: {exc}") from exc
        if root.tag != "chargingRecord":
            raise ValueError(f"unexpected root element: {root.tag!r}")

        def field(tag: str) -> str:
            node = root.find(tag)
            if node is None or node.text is None:
                raise ValueError(f"missing <{tag}> in charging record")
            return node.text.strip()

        imsi_tbcd = bytes.fromhex(field("servedIMSI").replace(" ", ""))
        return cls(
            served_imsi=Imsi.from_tbcd(imsi_tbcd),
            gateway_address=field("gatewayAddress"),
            charging_id=int(field("chargingID")),
            sequence_number=int(field("SequenceNumber")),
            time_of_first_usage=_parse_time(field("timeOfFirstUsage")),
            time_of_last_usage=_parse_time(field("timeOfLastUsage")),
            uplink_bytes=int(field("datavolumeUplink")),
            downlink_bytes=int(field("datavolumeDownlink")),
        )

    def to_bytes(self) -> bytes:
        """Compact 34-byte binary encoding (Figure 17's LTE CDR size)."""
        imsi_tbcd = self.served_imsi.to_tbcd().ljust(8, b"\xff")[:8]
        return _BINARY_LAYOUT.pack(
            imsi_tbcd,
            _ipv4_to_bytes(self.gateway_address),
            self.charging_id & 0xFFFFFFFF,
            self.sequence_number & 0xFFFFFFFF,
            int(self.time_of_first_usage) & 0xFFFFFFFF,
            min(self.time_usage, 0xFFFF),
            min(self.uplink_bytes, 0xFFFFFFFF),
            min(self.downlink_bytes, 0xFFFFFFFF),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChargingDataRecord":
        """Decode a record produced by :meth:`to_bytes`."""
        (
            imsi_tbcd,
            gw_bytes,
            charging_id,
            sequence,
            first_usage,
            duration,
            uplink,
            downlink,
        ) = _BINARY_LAYOUT.unpack(data)
        imsi = Imsi.from_tbcd(imsi_tbcd.rstrip(b"\xff"))
        return cls(
            served_imsi=imsi,
            gateway_address=_ipv4_from_bytes(gw_bytes),
            charging_id=charging_id,
            sequence_number=sequence,
            time_of_first_usage=float(first_usage),
            time_of_last_usage=float(first_usage + duration),
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )
