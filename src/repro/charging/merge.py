"""Mergeable charging state across the gateway/OFCS boundary.

A sharded population run (:mod:`repro.experiments.sharding`) simulates
disjoint slices of one cell's UE population in separate processes, but
the paper's charging pipeline has a single administrative boundary: one
charging gateway metering every bearer, one OFCS collecting every CDR,
one Algorithm 1 negotiation per cycle.  :class:`ChargingAggregate` is
the state that crosses that boundary in mergeable form — everything a
settlement needs, as a **commutative monoid**:

- the ground-truth pair ``(x̂e, x̂o)`` summed over UEs,
- both parties' monitor views summed over UEs (each party's belief
  about a population is the sum of its per-session beliefs),
- the legacy gateway-charged volume summed,
- the OFCS CDR count summed.

All quantities are integer byte counts carried as floats, so merges
are exact, associative, and order-independent below 2**53 bytes
(≈ 9 petabytes — comfortably above any cell), which is what makes the
merged settlement shard-count invariant: Algorithm 1 over the merged
views of an N-shard run equals Algorithm 1 over the single-shard run,
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import GroundTruth, UsageView


@dataclass(frozen=True)
class ChargingAggregate:
    """Additive charging state of a UE sub-population.

    The identity element is the default instance (all zeros);
    :meth:`merge` is the monoid operation.  Use :meth:`truth`,
    :meth:`edge_view`, and :meth:`operator_view` to hand the merged
    state to :func:`repro.experiments.scenario.charge_with_scheme` (via
    a merged :class:`~repro.experiments.scenario.ScenarioResult`) or
    directly to the negotiation strategies.
    """

    truth_sent: float = 0.0
    truth_received: float = 0.0
    edge_sent: float = 0.0
    edge_received: float = 0.0
    operator_sent: float = 0.0
    operator_received: float = 0.0
    legacy_charged: float = 0.0
    cdr_count: int = 0
    ue_count: int = 0

    def merge(self, other: "ChargingAggregate") -> "ChargingAggregate":
        """The monoid operation: fieldwise sums."""
        return ChargingAggregate(
            truth_sent=self.truth_sent + other.truth_sent,
            truth_received=self.truth_received + other.truth_received,
            edge_sent=self.edge_sent + other.edge_sent,
            edge_received=self.edge_received + other.edge_received,
            operator_sent=self.operator_sent + other.operator_sent,
            operator_received=(
                self.operator_received + other.operator_received
            ),
            legacy_charged=self.legacy_charged + other.legacy_charged,
            cdr_count=self.cdr_count + other.cdr_count,
            ue_count=self.ue_count + other.ue_count,
        )

    @classmethod
    def of_views(
        cls,
        truth: GroundTruth,
        edge_view: UsageView,
        operator_view: UsageView,
        legacy_charged: float,
        cdr_count: int = 0,
        ue_count: int = 1,
    ) -> "ChargingAggregate":
        """One UE session's (or sub-population's) charging state."""
        return cls(
            truth_sent=truth.sent,
            truth_received=truth.received,
            edge_sent=edge_view.sent_estimate,
            edge_received=edge_view.received_estimate,
            operator_sent=operator_view.sent_estimate,
            operator_received=operator_view.received_estimate,
            legacy_charged=legacy_charged,
            cdr_count=cdr_count,
            ue_count=ue_count,
        )

    def truth(self) -> GroundTruth:
        """The merged ground-truth pair."""
        return GroundTruth(
            sent=self.truth_sent, received=self.truth_received
        )

    def edge_view(self) -> UsageView:
        """The edge party's merged monitor view."""
        return UsageView(
            sent_estimate=self.edge_sent,
            received_estimate=self.edge_received,
        )

    def operator_view(self) -> UsageView:
        """The operator's merged monitor view."""
        return UsageView(
            sent_estimate=self.operator_sent,
            received_estimate=self.operator_received,
        )
