"""Charging substrate: CDRs, policies, cycles, bills.

This package reproduces the 4G offline-charging machinery the paper builds
on (§2.1): the gateway emits charging data records (Trace 1), the offline
charging system (OFCS) aggregates them per charging cycle, and a policy
converts usage into a bill (including "unlimited" plans that throttle past
a quota).
"""

from repro.charging.cdr import ChargingDataRecord
from repro.charging.cycle import ChargingCycle, CycleSchedule
from repro.charging.policy import ChargingPolicy
from repro.charging.billing import Bill, RatePlan

__all__ = [
    "ChargingDataRecord",
    "ChargingCycle",
    "CycleSchedule",
    "ChargingPolicy",
    "Bill",
    "RatePlan",
]
