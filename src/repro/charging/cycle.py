"""Charging cycles.

The paper's data plan fixes a charging cycle ``T = (T_start, T_end)``
(1 hour per experiment round in §7.1); TLC's negotiation runs once per
cycle, at its end.  :class:`CycleSchedule` slices simulated time into
consecutive cycles and tells each party — whose local clock may be skewed —
when a boundary falls in *its* view of time, which is exactly the error
source Figure 18 attributes the residual record error to.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChargingCycle:
    """One cycle ``[start, end)`` in reference time (seconds)."""

    index: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty charging cycle: [{self.start}, {self.end})")
        if self.index < 0:
            raise ValueError(f"negative cycle index: {self.index}")

    @property
    def duration(self) -> float:
        """Cycle length in seconds."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """True when ``t`` falls inside the cycle (half-open)."""
        return self.start <= t < self.end

    def key(self) -> tuple[float, float]:
        """The ``(T_start, T_end)`` pair used inside TLC messages."""
        return (self.start, self.end)


@dataclass(frozen=True)
class CycleSchedule:
    """Consecutive fixed-length cycles starting at ``origin``."""

    origin: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"cycle duration must be positive: {self.duration}")

    def cycle(self, index: int) -> ChargingCycle:
        """The ``index``-th cycle."""
        start = self.origin + index * self.duration
        return ChargingCycle(index=index, start=start, end=start + self.duration)

    def cycle_at(self, t: float) -> ChargingCycle:
        """The cycle containing reference time ``t``."""
        if t < self.origin:
            raise ValueError(f"time {t} precedes schedule origin {self.origin}")
        index = int((t - self.origin) // self.duration)
        return self.cycle(index)

    def cycles_between(self, start: float, end: float) -> list[ChargingCycle]:
        """All cycles overlapping ``[start, end)``."""
        if end <= start:
            return []
        first = self.cycle_at(start).index
        out = []
        index = first
        while True:
            cycle = self.cycle(index)
            if cycle.start >= end:
                break
            out.append(cycle)
            index += 1
        return out
