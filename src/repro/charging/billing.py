"""Bills and rate plans.

Downstream of the charging-volume decision: a :class:`RatePlan` prices the
charged bytes, applies the quota, and produces a :class:`Bill`.  TLC does
not change this layer — it changes the *volume* fed into it — but having it
lets examples show the end-to-end monetary effect of the charging gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charging.policy import ChargingPolicy

MB = 1_000_000


@dataclass(frozen=True)
class RatePlan:
    """Pricing for a data plan.

    Attributes
    ----------
    price_per_mb:
        Metered price in currency units per megabyte.
    monthly_fee:
        Flat recurring fee.
    policy:
        The charging policy (loss weight + quota) the plan embeds.
    """

    price_per_mb: float = 0.01
    monthly_fee: float = 0.0
    policy: ChargingPolicy = ChargingPolicy()

    def __post_init__(self) -> None:
        if self.price_per_mb < 0 or self.monthly_fee < 0:
            raise ValueError("prices must be non-negative")

    def bill_for(self, charged_bytes: float) -> "Bill":
        """Price a cycle's charged volume."""
        if charged_bytes < 0:
            raise ValueError(f"negative charged volume: {charged_bytes}")
        metered = self.price_per_mb * charged_bytes / MB
        return Bill(
            charged_bytes=charged_bytes,
            metered_amount=metered,
            flat_amount=self.monthly_fee,
            throttled=self.policy.should_throttle(charged_bytes),
        )


@dataclass(frozen=True)
class Bill:
    """The priced outcome of one charging cycle."""

    charged_bytes: float
    metered_amount: float
    flat_amount: float
    throttled: bool

    @property
    def total(self) -> float:
        """Total amount due."""
        return self.metered_amount + self.flat_amount

    def overbilling_vs(self, fair_bill: "Bill") -> float:
        """Signed monetary difference against the fair bill."""
        return self.total - fair_bill.total
