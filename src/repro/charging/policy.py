"""Charging policies: how claimed volumes become the charged volume.

§2.1 of the paper surveys real policies: some operators charge only
received data, some also charge lost data (it consumed radio resources),
some throttle past a quota.  TLC is policy-neutral — the whole spectrum is
the single weight ``c`` of Equation (1):

    x = x_o + c * (x_e - x_o),    0 <= c <= 1,  x_o <= x_e

``c = 0`` charges only received data; ``c = 1`` charges all sent data.
The symmetric branch (``x_o > x_e``, a signal someone is claiming
selfishly) mirrors the formula exactly as Algorithm 1 line 8 does.
"""

from __future__ import annotations

from dataclasses import dataclass


def charged_volume(x_received: float, x_sent: float, c: float) -> float:
    """Equation (1) / Algorithm 1 line 8: the negotiated charging volume.

    Accepts the claims in either order, mirroring the algorithm's two
    branches; callers pass ``(x_o, x_e)``.
    """
    if not 0.0 <= c <= 1.0:
        raise ValueError(f"charging weight c out of [0,1]: {c}")
    if x_received < 0 or x_sent < 0:
        raise ValueError("claimed volumes must be non-negative")
    if x_received <= x_sent:
        return x_received + c * (x_sent - x_received)
    return x_sent + c * (x_received - x_sent)


@dataclass(frozen=True)
class ChargingPolicy:
    """An operator policy: the lost-data weight plus optional quota rules.

    Attributes
    ----------
    loss_weight:
        The constant ``c`` from the data plan.
    quota_bytes:
        "Unlimited"-plan quota after which speed is throttled
        (``None`` disables the quota).
    throttle_bps:
        Throttled speed once past the quota (128 kbps in the paper's
        AT&T example).
    """

    loss_weight: float = 0.5
    quota_bytes: int | None = None
    throttle_bps: float = 128_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_weight <= 1.0:
            raise ValueError(f"loss weight out of [0,1]: {self.loss_weight}")
        if self.quota_bytes is not None and self.quota_bytes < 0:
            raise ValueError(f"negative quota: {self.quota_bytes}")
        if self.throttle_bps <= 0:
            raise ValueError(f"throttle speed must be positive: {self.throttle_bps}")

    def charge(self, x_received: float, x_sent: float) -> float:
        """The volume to charge given the two (claimed) volumes."""
        return charged_volume(x_received, x_sent, self.loss_weight)

    def should_throttle(self, cumulative_bytes: float) -> bool:
        """True once the cycle's cumulative usage passes the quota."""
        return (
            self.quota_bytes is not None
            and cumulative_bytes > self.quota_bytes
        )
