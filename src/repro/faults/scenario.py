"""End-to-end fault scenarios: cycle + faults + recovery + settlement.

One fault scenario = one charging cycle run with a
:class:`~repro.faults.plan.FaultPlan` armed, followed by a
fault-tolerant settlement:

1. the cycle runs through :func:`repro.experiments.scenario.run_scenario`
   with a :class:`~repro.faults.injector.FaultInjector` as hooks;
2. both parties negotiate honestly from their (fault-distorted) views
   over a :class:`~repro.faults.signaling.FaultySignalingLink`, with
   retransmission + dedup (:mod:`repro.faults.negotiation`); if the
   deadline passes unconverged, settlement falls back to the direct
   out-of-band channel (the paper's synchronous exchange);
3. the PoC goes through Algorithm 2 with a settlement window;
4. the headline invariants are evaluated and returned with the result:
   the settled charge lies between the two parties' claims, the
   packet-path byte accounting reconciles exactly, and the crash fault
   ledger closes (``billed == counted − fault_uncounted``).

``run_fault_scenario`` is a module-level function of one picklable
config, so fault grids run through the campaign engine with caching and
process fan-out exactly like fault-free sweeps — under a *separate*
runner id, so existing cache entries stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.charging.policy import charged_volume
from repro.core.protocol import (
    NegotiationAgent,
    run_negotiation,
)
from repro.core.strategies import HonestStrategy, Role
from repro.core.verifier import PublicVerifier
from repro.crypto.nonces import NonceFactory
from repro.crypto.rsa import generate_keypair
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults.injector import FaultInjector
from repro.faults.negotiation import run_reliable_negotiation
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.recovery import RetryPolicy
from repro.faults.signaling import FaultySignalingLink
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams

#: How long after the cycle end the verifier still accepts a PoC.
DEFAULT_SETTLEMENT_WINDOW = 120.0
#: Simulated deadline for the fault-tolerant negotiation phase.
DEFAULT_NEGOTIATION_DEADLINE = 60.0


@dataclass(frozen=True)
class FaultScenarioConfig:
    """One fault-campaign cell: a scenario config plus a fault plan."""

    scenario: ScenarioConfig
    plan: FaultPlan = field(default_factory=FaultPlan)


@dataclass
class FaultScenarioResult:
    """Everything one fault scenario produced (picklable primitives)."""

    plan_name: str
    seed: int
    app: str
    #: Ground truth and party views (floats).
    truth_sent: float
    truth_received: float
    edge_sent_estimate: float
    edge_received_estimate: float
    operator_sent_estimate: float
    operator_received_estimate: float
    legacy_charged: float
    fair_volume: float
    #: Injected fault/recovery timeline and recovery counters.
    fault_timeline: list = field(default_factory=list)
    recovery: dict = field(default_factory=dict)
    #: Fault-tolerant negotiation outcome.
    negotiation: dict = field(default_factory=dict)
    #: Algorithm 2 verdict on the settled PoC.
    verification: dict = field(default_factory=dict)
    #: The headline bound: claims bracket the settled charge.
    bound: dict = field(default_factory=dict)
    #: Byte-accounting ledger checks.
    ledger: dict = field(default_factory=dict)

    @property
    def settled(self) -> float:
        """The settled charging volume."""
        return float(self.bound.get("settled", 0.0))

    @property
    def bound_holds(self) -> bool:
        """min(claims) <= settled <= max(claims)?"""
        return bool(self.bound.get("holds", False))

    @property
    def reconciles(self) -> bool:
        """Did the packet-path accounting reconcile exactly?"""
        return bool(self.ledger.get("packet_reconciles", False))


def _signaling_rates(plan: FaultPlan) -> dict[str, float]:
    """Fold the plan's signaling specs into link fault rates."""
    rates = {"drop_rate": 0.0, "duplicate_rate": 0.0, "reorder_rate": 0.0}
    for spec in plan.of_kind(FaultKind.SIGNALING):
        rates["drop_rate"] = max(
            rates["drop_rate"], float(spec.param("drop_rate", spec.intensity))
        )
        rates["duplicate_rate"] = max(
            rates["duplicate_rate"],
            float(spec.param("duplicate_rate", spec.intensity / 2.0)),
        )
        rates["reorder_rate"] = max(
            rates["reorder_rate"],
            float(spec.param("reorder_rate", spec.intensity / 2.0)),
        )
    rates["drop_rate"] = min(0.9, rates["drop_rate"])
    return rates


def _gateway_ledger(recovery: dict, telemetry_record: dict | None) -> dict:
    """Close the crash fault ledger from telemetry + recovery counters.

    Checks the metering-vs-billing identity per direction:
    ``billed == counted − fault_uncounted`` where ``counted`` is the
    observer-side metering record (survives crashes) and
    ``fault_uncounted`` is what restarts charged to the fault ledger.
    """
    checks: dict[str, Any] = {"packet_reconciles": None}
    if telemetry_record is None:
        return checks
    accounting = telemetry_record.get("accounting", {})
    checks["packet_reconciles"] = bool(accounting.get("reconciles", False))
    checks["residual"] = float(accounting.get("residual", 0.0))
    checks["fault_uncounted"] = dict(accounting.get("fault_uncounted", {}))
    gw = recovery.get("gateway", {})
    direction = telemetry_record.get("direction")
    wiped = (
        gw.get("fault_uncounted_uplink", 0)
        if direction == "uplink"
        else gw.get("fault_uncounted_downlink", 0)
    )
    # The accounting table's fault column and the gateway's own ledger
    # must agree byte for byte.
    table_wiped = checks["fault_uncounted"].get("gateway", 0.0)
    checks["fault_ledger_consistent"] = float(wiped) == float(table_wiped)
    return checks


def run_fault_scenario(config: FaultScenarioConfig) -> FaultScenarioResult:
    """Run one charging cycle under a fault plan, then settle it."""
    # Telemetry is load-bearing here: the ledger checks read the
    # accounting table, so metering is forced on for fault runs.
    scenario_config = replace(config.scenario, telemetry=True)
    injector = FaultInjector(config.plan)
    result = run_scenario(scenario_config, hooks=injector)
    recovery = injector.recovery_stats()

    # ------------------------------------------------------------------
    # Fault-tolerant settlement: honest parties negotiate from their own
    # (fault-distorted) views over the lossy signaling plane.
    plan = result.plan
    rngs = RngStreams(scenario_config.seed)
    edge_keys = generate_keypair(1024, rngs.stream("fault-edge-key"))
    operator_keys = generate_keypair(1024, rngs.stream("fault-op-key"))

    def build_agents() -> tuple[NegotiationAgent, NegotiationAgent]:
        nonces = NonceFactory(
            rngs.stream("fault-nonces", config.plan.name)
        )
        edge = NegotiationAgent(
            role=Role.EDGE,
            strategy=HonestStrategy(Role.EDGE, result.edge_view),
            plan=plan,
            private_key=edge_keys.private,
            peer_public_key=operator_keys.public,
            nonce_factory=nonces,
        )
        operator = NegotiationAgent(
            role=Role.OPERATOR,
            strategy=HonestStrategy(Role.OPERATOR, result.operator_view),
            plan=plan,
            private_key=operator_keys.private,
            peer_public_key=edge_keys.public,
            nonce_factory=nonces,
        )
        return edge, operator

    rates = _signaling_rates(config.plan)
    edge_agent, operator_agent = build_agents()
    loop = EventLoop(start=plan.cycle.end)
    link = FaultySignalingLink(
        loop,
        rngs.stream("fault-link", config.plan.name),
        **rates,
    )
    outcome = run_reliable_negotiation(
        loop,
        edge_agent,
        operator_agent,
        link,
        policy=RetryPolicy(base_delay=0.2, max_delay=3.0, max_attempts=10),
        rng=rngs.stream("fault-backoff", config.plan.name),
        deadline=DEFAULT_NEGOTIATION_DEADLINE,
    )
    negotiation: dict[str, Any] = outcome.as_dict()
    negotiation["link"] = link.stats()
    negotiation["fallback_used"] = False

    poc = edge_agent.poc or operator_agent.poc
    presented_at = loop.now
    if poc is None:
        # Escalation path: the retry budget ran dry (e.g. near-total
        # signaling loss), so the parties settle over the direct
        # out-of-band channel with fresh agents.
        edge_agent, operator_agent = build_agents()
        fallback = run_negotiation(edge_agent, operator_agent)
        poc = fallback.poc
        negotiation["fallback_used"] = True
        negotiation["converged"] = fallback.converged
        negotiation["volume"] = fallback.volume

    # ------------------------------------------------------------------
    # Algorithm 2, with the settlement window enforced.
    verifier = PublicVerifier(settlement_window=DEFAULT_SETTLEMENT_WINDOW)
    if poc is not None:
        verdict = verifier.verify(
            poc,
            plan,
            edge_keys.public,
            operator_keys.public,
            presented_at=presented_at,
        )
        verification = {"ok": verdict.ok, "reason": verdict.reason}
    else:  # pragma: no cover - fallback always converges for honest agents
        verification = {"ok": False, "reason": "no PoC produced"}

    # ------------------------------------------------------------------
    # The headline bound: x between the claims embedded in the PoC.
    if poc is not None:
        edge_claim, operator_claim = sorted(
            (poc.cda.volume, poc.cda.peer_cdr.volume)
        )
        settled = poc.volume
        recomputed = charged_volume(
            poc.cda.peer_cdr.volume, poc.cda.volume, plan.c
        )
        slack = 1e-9 * max(1.0, abs(settled))
        bound = {
            "lower": edge_claim,
            "upper": operator_claim,
            "settled": settled,
            "holds": (
                edge_claim - slack <= settled <= operator_claim + slack
            ),
            "matches_formula": abs(settled - recomputed) <= slack,
        }
    else:  # pragma: no cover - see above
        bound = {
            "lower": 0.0,
            "upper": 0.0,
            "settled": 0.0,
            "holds": False,
            "matches_formula": False,
        }

    ledger = _gateway_ledger(
        recovery, result.extras.get("telemetry")
    )

    return FaultScenarioResult(
        plan_name=config.plan.name,
        seed=scenario_config.seed,
        app=scenario_config.app,
        truth_sent=result.truth.sent,
        truth_received=result.truth.received,
        edge_sent_estimate=result.edge_view.sent_estimate,
        edge_received_estimate=result.edge_view.received_estimate,
        operator_sent_estimate=result.operator_view.sent_estimate,
        operator_received_estimate=result.operator_view.received_estimate,
        legacy_charged=result.legacy_charged,
        fair_volume=result.fair_volume,
        fault_timeline=list(injector.timeline),
        recovery=recovery,
        negotiation=negotiation,
        verification=verification,
        bound=bound,
        ledger=ledger,
    )
