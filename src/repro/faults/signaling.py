"""A faulty signaling channel: drop, duplicate, and reorder messages.

The negotiation's CDR/CDA/PoC exchange (and in principle any signaling
RPC) runs over this link in fault scenarios.  Each transmission draws
from the link's *own* seeded stream — one uniform per fault axis, in a
fixed order — so the fault pattern is a pure function of (seed, message
sequence) and fault runs stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro import telemetry
from repro.sim.events import EventLoop

Receive = Callable[[Any], None]


class FaultySignalingLink:
    """Message transport with seeded drop/duplicate/reorder faults.

    Parameters
    ----------
    drop_rate:
        Probability a transmission vanishes.
    duplicate_rate:
        Probability a delivered transmission arrives twice.
    reorder_rate:
        Probability a delivered transmission is held back by
        ``reorder_delay`` extra seconds (overtaken by later messages).
    base_delay:
        One-way propagation delay of the healthy link.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: random.Random,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        base_delay: float = 0.02,
        reorder_delay: float = 0.25,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if base_delay < 0 or reorder_delay < 0:
            raise ValueError("delays must be >= 0")
        self.loop = loop
        self._rng = rng
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.reorder_rate = float(reorder_rate)
        self.base_delay = float(base_delay)
        self.reorder_delay = float(reorder_delay)
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.delivered = 0
        self._telemetry = tel = telemetry.current()
        # Bound counter handles (fixed labels, resolved once).
        self._m_dropped = self._m_reordered = self._m_duplicated = None
        if tel is not None:
            self._m_dropped = tel.bind_counter(
                "signaling_dropped", layer="signaling"
            )
            self._m_reordered = tel.bind_counter(
                "signaling_reordered", layer="signaling"
            )
            self._m_duplicated = tel.bind_counter(
                "signaling_duplicated", layer="signaling"
            )

    def send(self, message: Any, receive: Receive) -> None:
        """Transmit one message toward ``receive``, applying faults.

        Exactly three uniforms are drawn per send (drop, reorder,
        duplicate — in that order), whatever the outcome, so the draw
        sequence never depends on earlier verdicts.
        """
        self.sent += 1
        rng = self._rng
        drop = rng.random() < self.drop_rate
        reorder = rng.random() < self.reorder_rate
        duplicate = rng.random() < self.duplicate_rate
        tel = self._telemetry
        if drop:
            self.dropped += 1
            if tel is not None:
                self._m_dropped.inc()
            return
        delay = self.base_delay
        if reorder:
            self.reordered += 1
            delay += self.reorder_delay
            if tel is not None:
                self._m_reordered.inc()
        self._deliver(message, receive, delay)
        if duplicate:
            self.duplicated += 1
            if tel is not None:
                self._m_duplicated.inc()
            self._deliver(message, receive, delay + self.base_delay)

    def _deliver(self, message: Any, receive: Receive, delay: float) -> None:
        self.delivered += 1
        self.loop.schedule_in(
            delay, lambda: receive(message), label="signaling-rx"
        )

    def stats(self) -> dict[str, int]:
        """Picklable link counters for result extras."""
        return {
            "sent": self.sent,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "delivered": self.delivered,
        }
