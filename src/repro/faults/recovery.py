"""Recovery machinery: retries, dedup, and counter checkpointing.

Every fault in :mod:`repro.faults.plan` pairs with a recovery mechanism
here or in :mod:`repro.faults.negotiation`:

- crash-restart ← periodic :class:`CounterCheckpointer` + restore;
- OFCS outage ← :class:`ReliableCdrDelivery` (spool, exponential
  backoff with seeded jitter, idempotent redelivery);
- signaling loss ← :class:`RetryPolicy`-driven retransmission plus
  :class:`DedupCache` (duplicate suppression by message identity).

All timing randomness (jitter) comes from a named seeded stream, so a
fault run is as byte-identical as a fault-free one.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro import telemetry
from repro.charging.cdr import ChargingDataRecord
from repro.lte.gateway import ChargingGateway, GatewayCheckpoint
from repro.lte.ofcs import OfflineChargingSystem
from repro.sim.events import EventLoop, PeriodicEvent


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full-range multiplicative jitter.

    ``delay(n)`` for attempt ``n`` (0-based) is
    ``min(max_delay, base_delay * multiplier**n)``, scaled by a jitter
    factor uniform in ``[1 - jitter, 1 + jitter]`` when an RNG is given.
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    max_attempts: int = 12

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base delay must be > 0: {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max attempts must be >= 1: {self.max_attempts}"
            )

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def exhausted(self, attempt: int) -> bool:
        """True when ``attempt`` (0-based) has no retries left."""
        return attempt + 1 >= self.max_attempts


class DedupCache:
    """Idempotent message handling: remember each key's cached reply.

    A receiver processes a message once, remembers the reply under the
    message's identity, and answers any redelivery with the *same*
    cached reply instead of re-driving its state machine — which both
    suppresses duplicates and un-sticks a sender whose previous reply
    was lost in flight.

    ``max_entries`` bounds the cache for long-lived processes (the
    charging service keeps one of these per gateway for the life of the
    process): when full, the least-recently-used entry is evicted.  An
    evicted key is simply forgotten — a *very* late redelivery of a
    settled message re-drives the receiver, which every user of this
    cache must already tolerate (the OFCS ingest and the negotiation
    endpoints are idempotent by construction).  ``None`` keeps the
    historical unbounded behaviour for short-lived batch runs.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"dedup cache bound must be >= 1: {max_entries}"
            )
        self.max_entries = max_entries
        self._replies: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._replies

    def __len__(self) -> int:
        return len(self._replies)

    def remember(self, key: Hashable, reply: Any) -> None:
        """Record the reply produced for ``key`` (may be ``None``)."""
        if key in self._replies:
            self._replies.move_to_end(key)
        self._replies[key] = reply
        if (
            self.max_entries is not None
            and len(self._replies) > self.max_entries
        ):
            self._replies.popitem(last=False)
            self.evictions += 1

    def replay(self, key: Hashable) -> Any:
        """The cached reply for a duplicate; counts the hit."""
        self.hits += 1
        self._replies.move_to_end(key)
        return self._replies[key]


class CounterCheckpointer:
    """Periodically snapshot a gateway's volatile charging counters.

    The restore path (:meth:`repro.lte.gateway.ChargingGateway.restart`)
    uses :meth:`latest`; everything metered after that snapshot and
    before the crash is what the fault ledger charges to the fault.
    """

    def __init__(
        self,
        loop: EventLoop,
        gateway: ChargingGateway,
        period: float = 5.0,
    ) -> None:
        self.loop = loop
        self.gateway = gateway
        self.period = float(period)
        self.checkpoints_taken = 0
        self._latest: GatewayCheckpoint | None = None
        self._task: PeriodicEvent = loop.schedule_every(
            self.period, self._take, label="gw-checkpoint"
        )

    def _take(self) -> None:
        if not self.gateway.alive:
            return  # a crashed process cannot checkpoint itself
        self._latest = self.gateway.checkpoint()
        self.checkpoints_taken += 1

    def latest(self) -> GatewayCheckpoint | None:
        """The most recent snapshot (None before the first period)."""
        return self._latest

    def cancel(self) -> None:
        """Stop checkpointing (scenario teardown)."""
        self._task.cancel()


class ReliableCdrDelivery:
    """At-least-once CDR delivery from a gateway to the OFCS.

    Replaces the direct ``gateway -> ofcs.ingest`` wiring: every emitted
    CDR is spooled, submitted, and — when the OFCS refuses (outage) —
    retried on an exponential-backoff schedule until acknowledged or the
    retry budget runs out.  The OFCS deduplicates by
    ``(charging_id, sequence_number)``, so redelivering an
    already-recorded CDR (a retry whose ack raced the outage) is safe.
    """

    def __init__(
        self,
        loop: EventLoop,
        gateway: ChargingGateway,
        ofcs: OfflineChargingSystem,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        deliver: Callable[[ChargingDataRecord], bool] | None = None,
    ) -> None:
        self.loop = loop
        self.gateway = gateway
        self.ofcs = ofcs
        self.policy = policy or RetryPolicy(
            base_delay=0.5, max_delay=8.0, max_attempts=30
        )
        self._rng = rng
        self._deliver = deliver if deliver is not None else ofcs.ingest
        self.spooled = 0
        self.delivered = 0
        self.retries = 0
        self.abandoned = 0
        self.abandoned_bytes = 0
        self._telemetry = tel = telemetry.current()
        # Bound counter handles (fixed labels, resolved once).
        self._m_abandoned = self._m_retries = None
        if tel is not None:
            self._m_abandoned = tel.bind_counter(
                "cdrs_abandoned", layer="cdr-delivery"
            )
            self._m_retries = tel.bind_counter(
                "cdr_delivery_retries", layer="cdr-delivery"
            )
        gateway.disconnect_cdr(ofcs.ingest)
        gateway.on_cdr(self.submit)

    @property
    def unacked(self) -> int:
        """CDRs spooled but neither delivered nor abandoned yet."""
        return self.spooled - self.delivered - self.abandoned

    def submit(self, record: ChargingDataRecord) -> None:
        """Accept one CDR from the gateway and drive it to delivery."""
        self.spooled += 1
        self._attempt(record, 0)

    def _attempt(self, record: ChargingDataRecord, attempt: int) -> None:
        if self._deliver(record):
            self.delivered += 1
            return
        tel = self._telemetry
        if self.policy.exhausted(attempt):
            self.abandoned += 1
            self.abandoned_bytes += (
                record.uplink_bytes + record.downlink_bytes
            )
            if tel is not None:
                self._m_abandoned.inc()
                tel.event(
                    "cdr-delivery",
                    "abandoned",
                    sequence=record.sequence_number,
                    attempts=attempt + 1,
                )
            return
        self.retries += 1
        if tel is not None:
            self._m_retries.inc()
        self.loop.schedule_in(
            self.policy.delay(attempt, self._rng),
            lambda: self._attempt(record, attempt + 1),
            label="cdr-retry",
        )

    def stats(self) -> dict[str, int]:
        """Picklable delivery counters for result extras."""
        return {
            "spooled": self.spooled,
            "delivered": self.delivered,
            "retries": self.retries,
            "abandoned": self.abandoned,
            "abandoned_bytes": self.abandoned_bytes,
            "unacked": self.unacked,
        }
