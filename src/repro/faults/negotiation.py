"""Fault-tolerant negotiation: Figure 7 over a lossy signaling plane.

:func:`repro.core.protocol_sim.run_negotiation_simulated` assumes a
reliable link; this runner plays the same :class:`NegotiationAgent`
state machines over a :class:`~repro.faults.signaling.FaultySignalingLink`
with the recovery mechanics a real deployment needs:

- **retransmission**: a sender re-sends its last message on an
  exponential-backoff timer (:class:`~repro.faults.recovery.RetryPolicy`)
  until the peer makes progress or the budget runs out;
- **idempotent dedup**: each receiver remembers every message it has
  processed by wire identity (:func:`repro.core.protocol.message_key`)
  and answers redeliveries by replaying the cached reply — the state
  machine is driven at most once per distinct message, so duplicates
  and retransmissions cannot corrupt the bound contraction;
- **deadline**: the run is bounded; if the exchange has not converged
  when the deadline fires the caller falls back to an out-of-band
  channel (see :mod:`repro.faults.scenario`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.messages import MessageError
from repro.core.protocol import (
    Message,
    NegotiationAgent,
    ProtocolError,
    message_key,
)
from repro.faults.recovery import DedupCache, RetryPolicy
from repro.faults.signaling import FaultySignalingLink
from repro.sim.events import Event, EventLoop


@dataclass
class ReliableOutcome:
    """What a fault-tolerant negotiation run produced."""

    converged: bool
    volume: float | None
    elapsed: float
    messages_sent: int
    retransmissions: int
    duplicates_suppressed: int
    failure: str = ""

    def as_dict(self) -> dict:
        """Picklable form for campaign results."""
        return {
            "converged": self.converged,
            "volume": self.volume,
            "elapsed": self.elapsed,
            "messages_sent": self.messages_sent,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "failure": self.failure,
        }


class _ReliableEndpoint:
    """One party: agent + retransmission timer + dedup cache."""

    def __init__(
        self,
        loop: EventLoop,
        agent: NegotiationAgent,
        link: FaultySignalingLink,
        policy: RetryPolicy,
        rng: random.Random,
        name: str,
    ) -> None:
        self.loop = loop
        self.agent = agent
        self.link = link
        self.policy = policy
        self.rng = rng
        self.name = name
        self.peer: "_ReliableEndpoint | None" = None
        self.dedup = DedupCache()
        self.messages_sent = 0
        self.retransmissions = 0
        self._last_sent: Message | None = None
        self._attempt = 0
        self._timer: Event | None = None
        self.failed = ""

    # -- sending -------------------------------------------------------

    def send(self, message: Message) -> None:
        """Transmit a fresh message and arm its retransmission timer.

        A settled endpoint (its agent holds the PoC) expects no reply,
        so it sends without a timer: if this final message is lost, the
        peer's own retransmission triggers a dedup replay of it.
        """
        self._transmit(message)
        if self.agent.poc is not None:
            return
        self._last_sent = message
        self._attempt = 0
        self._arm_timer()

    def _transmit(self, message: Message) -> None:
        assert self.peer is not None
        self.messages_sent += 1
        self.link.send(message, self.peer.receive)

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.loop.schedule_in(
            self.policy.delay(self._attempt, self.rng),
            self._retransmit,
            label=f"{self.name}-rto",
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _retransmit(self) -> None:
        self._timer = None
        if self._last_sent is None or self.failed:
            return
        if self.policy.exhausted(self._attempt):
            return  # retry budget spent; the deadline decides the outcome
        self._attempt += 1
        self.retransmissions += 1
        self._transmit(self._last_sent)
        self._arm_timer()

    # -- receiving -----------------------------------------------------

    def receive(self, message: Message) -> None:
        """Handle an arrival: dedup-replay or drive the state machine."""
        key = message_key(message)
        if key in self.dedup:
            cached = self.dedup.replay(key)
            if cached is not None:
                # Our previous reply may have been lost; re-send the
                # exact cached message (same wire bytes, same identity)
                # rather than re-driving the agent.
                self._transmit(cached)
            return
        # Fresh message: the peer has our last message, so stop
        # retransmitting it.
        self._cancel_timer()
        self._last_sent = None
        try:
            reply = self.agent.handle(message)
        except (ProtocolError, MessageError) as exc:
            self.failed = str(exc)
            self.dedup.remember(key, None)
            return
        self.dedup.remember(key, reply)
        if reply is not None:
            self.send(reply)


def run_reliable_negotiation(
    loop: EventLoop,
    initiator: NegotiationAgent,
    responder: NegotiationAgent,
    link: FaultySignalingLink,
    policy: RetryPolicy | None = None,
    rng: random.Random | None = None,
    deadline: float = 60.0,
) -> ReliableOutcome:
    """Run a negotiation to convergence or deadline over a faulty link."""
    if deadline <= 0:
        raise ValueError(f"deadline must be > 0: {deadline}")
    policy = policy or RetryPolicy(
        base_delay=0.2, max_delay=3.0, max_attempts=10
    )
    rng = rng or random.Random(0)
    a = _ReliableEndpoint(loop, initiator, link, policy, rng, "initiator")
    b = _ReliableEndpoint(loop, responder, link, policy, rng, "responder")
    a.peer, b.peer = b, a

    started = loop.now

    def start() -> None:
        a.send(initiator.start())

    loop.schedule_in(0.0, start, label="reliable-negotiation-start")
    loop.run(until=started + deadline)

    poc = initiator.poc or responder.poc
    failure = a.failed or b.failed
    if poc is None and not failure:
        failure = "deadline reached before convergence"
    return ReliableOutcome(
        converged=poc is not None,
        volume=poc.volume if poc is not None else None,
        elapsed=loop.now - started,
        messages_sent=a.messages_sent + b.messages_sent,
        retransmissions=a.retransmissions + b.retransmissions,
        duplicates_suppressed=a.dedup.hits + b.dedup.hits,
        failure=failure,
    )
