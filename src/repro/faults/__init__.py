"""Deterministic fault injection & recovery for the charging pipeline.

The paper's charging guarantees are only interesting if they survive
the failure modes a real cellular core actually has: charging-function
crashes that wipe volatile counters, flaky signaling links under the
negotiation, clocks that step out from under NTP, and monitors that
lie.  This package injects exactly those faults — declaratively
(:mod:`repro.faults.plan`), deterministically (every decision from a
named seeded stream), and always *paired with the recovery mechanism*
that a deployment would use (:mod:`repro.faults.recovery`,
:mod:`repro.faults.negotiation`).

The headline invariants, asserted by the fault property suite across a
(kind x intensity) grid:

- the settled charge always lies between the two parties' claims;
- the per-layer byte accounting still reconciles exactly, with crash
  losses carried in their own fault-ledger column;
- two runs of the same (config, plan, seed) are byte-identical, so
  fault campaigns cache like any other sweep.
"""

from repro.faults.injector import FaultInjector
from repro.faults.negotiation import (
    ReliableOutcome,
    run_reliable_negotiation,
)
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    fault_grid,
    single_fault_plan,
)
from repro.faults.recovery import (
    CounterCheckpointer,
    DedupCache,
    ReliableCdrDelivery,
    RetryPolicy,
)
from repro.faults.scenario import (
    FaultScenarioConfig,
    FaultScenarioResult,
    run_fault_scenario,
)
from repro.faults.signaling import FaultySignalingLink

__all__ = [
    "CounterCheckpointer",
    "DedupCache",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultScenarioConfig",
    "FaultScenarioResult",
    "FaultSpec",
    "FaultySignalingLink",
    "ReliableCdrDelivery",
    "ReliableOutcome",
    "RetryPolicy",
    "fault_grid",
    "run_fault_scenario",
    "run_reliable_negotiation",
    "single_fault_plan",
]
