"""The fault injector: a :class:`FaultPlan` armed onto a live scenario.

Implements :class:`repro.experiments.scenario.ScenarioHooks`: the
scenario runner hands it the wired network, the monitor set, and the
boundary computation, and the injector schedules the plan's fault *and
recovery* events on the same deterministic event loop the traffic runs
on.  All randomness comes from named streams derived from the scenario
seed and the plan name, so (config, plan, seed) fully determines the
run.
"""

from __future__ import annotations

from typing import Any

from repro import telemetry
from repro.experiments.scenario import ScenarioConfig, ScenarioHooks
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import CounterCheckpointer, ReliableCdrDelivery
from repro.lte.network import LteNetwork
from repro.monitors.byzantine import ByzantineMonitor
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams
from repro.timesync.discipline import DisciplinedClock


class FaultInjector(ScenarioHooks):
    """Turn a fault plan into scheduled events with paired recovery."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.timeline: list[dict[str, Any]] = []
        self.checkpointer: CounterCheckpointer | None = None
        self.delivery: ReliableCdrDelivery | None = None
        self.clocks = {
            "edge": DisciplinedClock(),
            "operator": DisciplinedClock(),
        }
        self.counter_check_drops = 0
        self._network: LteNetwork | None = None
        self._loop: EventLoop | None = None

    # -- bookkeeping ---------------------------------------------------

    def _record(self, action: str, **detail: Any) -> None:
        at = self._loop.now if self._loop is not None else 0.0
        self.timeline.append({"at": at, "action": action, **detail})
        tel = telemetry.current()
        if tel is not None:
            tel.event("faults", action, **detail)

    # -- ScenarioHooks -------------------------------------------------

    def on_network(
        self,
        config: ScenarioConfig,
        loop: EventLoop,
        rngs: RngStreams,
        network: LteNetwork,
    ) -> None:
        """Arm every spec in the plan on the freshly wired testbed."""
        self._loop = loop
        self._network = network
        for index, spec in enumerate(self.plan.faults):
            if spec.kind is FaultKind.GATEWAY_CRASH:
                self._arm_gateway_crash(spec, loop, network)
            elif spec.kind is FaultKind.OFCS_OUTAGE:
                self._arm_ofcs_outage(spec, index, loop, rngs, network)
            elif spec.kind is FaultKind.SIGNALING:
                self._arm_signaling(spec, index, loop, rngs, network)
            elif spec.kind is FaultKind.CLOCK_STEP:
                self._arm_clock_step(spec)
            # BYZANTINE_MONITOR arms in on_monitors.

    def on_monitors(
        self,
        config: ScenarioConfig,
        loop: EventLoop,
        network: LteNetwork,
        monitors: dict,
    ) -> None:
        """Wrap targeted monitors with Byzantine corruption."""
        rngs = RngStreams(config.seed)
        for index, spec in enumerate(
            self.plan.of_kind(FaultKind.BYZANTINE_MONITOR)
        ):
            target = spec.param("target", "rrc")
            if target not in monitors:
                raise ValueError(
                    f"unknown byzantine target {target!r}; choose from "
                    f"{sorted(monitors)}"
                )
            mode = spec.param("mode", "inflate")
            monitors[target] = ByzantineMonitor(
                loop,
                monitors[target],
                mode=mode,
                intensity=spec.intensity,
                armed_at=spec.at,
                disarmed_at=spec.end,
                rng=rngs.stream(
                    "faults", self.plan.name, "byzantine", str(index)
                ),
            )
            self._record(
                "byzantine_armed",
                target=target,
                mode=mode,
                intensity=spec.intensity,
            )

    def boundary(
        self, party: str, cycle_end: float, residual_offset: float
    ) -> float:
        """Party boundary through its (possibly faulted) clock."""
        clock = self.clocks[party]
        clock.residual_offset = residual_offset
        return max(0.0, clock.boundary_in_reference_time(cycle_end))

    def finalize(
        self,
        config: ScenarioConfig,
        loop: EventLoop,
        network: LteNetwork,
    ) -> None:
        """End-of-run recovery: a still-crashed gateway restarts here.

        A crash with ``duration <= 0`` persists past the horizon; the
        restart must still happen so the fault ledger closes and billing
        uses the restored (checkpointed) counters.
        """
        if not network.gateway.alive:
            checkpoint = (
                self.checkpointer.latest() if self.checkpointer else None
            )
            lost = network.gateway.restart(checkpoint)
            self._record(
                "gateway_restarted",
                phase="finalize",
                lost_uplink=lost[0],
                lost_downlink=lost[1],
            )
        if not network.ofcs.available:
            network.ofcs.restore()
            self._record("ofcs_restored", phase="finalize")
        if self.checkpointer is not None:
            self.checkpointer.cancel()

    # -- per-kind arming -----------------------------------------------

    def _arm_gateway_crash(
        self, spec: FaultSpec, loop: EventLoop, network: LteNetwork
    ) -> None:
        period = float(spec.param("checkpoint_period", 5.0))
        if self.checkpointer is None and period > 0:
            self.checkpointer = CounterCheckpointer(
                loop, network.gateway, period
            )

        def crash() -> None:
            network.gateway.crash()
            self._record("gateway_crashed", intensity=spec.intensity)

        loop.schedule_at(spec.at, crash, label="fault-gw-crash")
        if spec.duration > 0:

            def restart() -> None:
                checkpoint = (
                    self.checkpointer.latest()
                    if self.checkpointer is not None
                    else None
                )
                lost = network.gateway.restart(checkpoint)
                self._record(
                    "gateway_restarted",
                    phase="scheduled",
                    lost_uplink=lost[0],
                    lost_downlink=lost[1],
                )

            loop.schedule_at(spec.end, restart, label="fault-gw-restart")

    def _arm_ofcs_outage(
        self,
        spec: FaultSpec,
        index: int,
        loop: EventLoop,
        rngs: RngStreams,
        network: LteNetwork,
    ) -> None:
        if self.delivery is None:
            # Rewire CDR delivery through the spool-and-retry channel so
            # records emitted during the outage survive it.
            self.delivery = ReliableCdrDelivery(
                loop,
                network.gateway,
                network.ofcs,
                rng=rngs.stream(
                    "faults", self.plan.name, "cdr-retry", str(index)
                ),
            )

        def go_dark() -> None:
            network.ofcs.go_dark()
            self._record("ofcs_dark", intensity=spec.intensity)

        loop.schedule_at(spec.at, go_dark, label="fault-ofcs-dark")
        if spec.duration > 0:

            def restore() -> None:
                network.ofcs.restore()
                self._record("ofcs_restored", phase="scheduled")

            loop.schedule_at(
                spec.end, restore, label="fault-ofcs-restore"
            )

    def _arm_signaling(
        self,
        spec: FaultSpec,
        index: int,
        loop: EventLoop,
        rngs: RngStreams,
        network: LteNetwork,
    ) -> None:
        """Drop COUNTER CHECK responses inside the fault window.

        The negotiation-phase signaling faults (CDR/CDA/PoC) are played
        separately by :mod:`repro.faults.scenario`, which reads the same
        spec; here the fault bites the in-cycle RRC exchange.
        """
        drop_rate = float(spec.param("drop_rate", spec.intensity))
        rng = rngs.stream(
            "faults", self.plan.name, "counter-check", str(index)
        )
        start, end = spec.at, spec.end
        enodeb = network.enodeb

        def filt(response: Any) -> Any:
            now = loop.now
            if not (start <= now < end):
                return response
            if rng.random() < drop_rate:
                self.counter_check_drops += 1
                return None
            return response

        enodeb.counter_check_filter = filt
        self._record("signaling_armed", drop_rate=drop_rate)

    def _arm_clock_step(self, spec: FaultSpec) -> None:
        party = spec.param("party", "operator")
        if party not in self.clocks:
            raise ValueError(
                f"unknown clock party {party!r}; choose from "
                f"{sorted(self.clocks)}"
            )
        clock = self.clocks[party]
        clock.step(
            at=spec.at,
            seconds=float(spec.param("step", spec.intensity)),
            skew_ppm=float(spec.param("skew_ppm", 0.0)),
        )
        if spec.duration > 0:
            clock.resync(spec.end)
        self._record(
            "clock_stepped",
            party=party,
            step=float(spec.param("step", spec.intensity)),
        )

    # -- result harvesting ---------------------------------------------

    def recovery_stats(self) -> dict[str, Any]:
        """Picklable recovery counters for the fault-scenario result."""
        network = self._network
        stats: dict[str, Any] = {
            "checkpoints_taken": (
                self.checkpointer.checkpoints_taken
                if self.checkpointer is not None
                else 0
            ),
            "cdr_delivery": (
                self.delivery.stats() if self.delivery is not None else None
            ),
            "counter_check_drops": self.counter_check_drops,
            "clocks": {
                party: clock.as_dict()
                for party, clock in self.clocks.items()
            },
        }
        if network is not None:
            stats["gateway"] = {
                "crashes": network.gateway.crashes,
                "fault_uncounted_uplink": network.gateway.fault_uncounted_uplink,
                "fault_uncounted_downlink": (
                    network.gateway.fault_uncounted_downlink
                ),
                "cdr_bytes_lost_in_crash": (
                    network.gateway.cdr_bytes_lost_in_crash
                ),
                "crash_dropped_bytes": network.gateway.crash_dropped_bytes,
            }
            stats["ofcs"] = {
                "refused_cdrs": network.ofcs.refused_cdrs,
                "deduplicated_cdrs": network.ofcs.deduplicated_cdrs,
            }
            stats["enodeb"] = {
                "counter_check_retries": (
                    network.enodeb.counter_check_retries
                ),
                "counter_check_failures": (
                    network.enodeb.counter_check_failures
                ),
            }
        return stats
