"""Declarative fault plans: what breaks, when, and how hard.

A :class:`FaultPlan` is the *configuration* of a fault campaign cell: a
named, frozen, JSON-round-trippable list of :class:`FaultSpec` entries.
The :class:`~repro.faults.injector.FaultInjector` turns a plan into
scheduled events on the scenario's event loop; because the plan is part
of the scenario config, it participates in the campaign cache key
(:mod:`repro.experiments.confighash`) and two runs of the same
(plan, seed) pair are byte-identical.

Intensity is a single scalar knob per fault so grids stay 2-D
(kind x intensity); kind-specific parameters ride in ``params``.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


class FaultKind(enum.Enum):
    """The fault taxonomy (DESIGN.md §7)."""

    #: S/P-GW process crash: volatile charging counters wiped; recovery
    #: is restart + restore from the latest periodic checkpoint.
    GATEWAY_CRASH = "gateway_crash"
    #: OFCS outage: CDR ingestion refuses deliveries; recovery is
    #: spool-and-retry with exponential backoff.
    OFCS_OUTAGE = "ofcs_outage"
    #: Signaling-plane faults: drop/duplicate/reorder on the COUNTER
    #: CHECK and CDR/CDA/PoC exchanges; recovery is retransmission with
    #: backoff plus idempotent dedup by message identity.
    SIGNALING = "signaling"
    #: Clock step/skew against a party's NTP discipline; recovery is a
    #: scheduled resync.
    CLOCK_STEP = "clock_step"
    #: Byzantine monitor: a counter source reports corrupted values
    #: while armed; the negotiation bound contains the damage.
    BYZANTINE_MONITOR = "byzantine_monitor"


class FaultPlanError(ValueError):
    """Raised on malformed plans (bad JSON, unknown kinds, bad times)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kind, onset, duration, and intensity.

    ``params`` is a tuple of ``(name, value)`` pairs — a frozen mapping,
    so specs stay hashable and canonicalize deterministically in cache
    keys.  ``duration <= 0`` means the fault persists to the end of the
    run (recovery still happens in the post-run finalize step).
    """

    kind: FaultKind
    at: float
    duration: float = 0.0
    intensity: float = 1.0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultPlanError(f"fault onset must be >= 0: {self.at}")
        if self.intensity < 0:
            raise FaultPlanError(
                f"fault intensity must be >= 0: {self.intensity}"
            )

    @property
    def end(self) -> float:
        """When the fault's recovery action fires (``inf`` if never)."""
        if self.duration <= 0:
            return float("inf")
        return self.at + self.duration

    def param(self, name: str, default: Any = None) -> Any:
        """Look up one kind-specific parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form."""
        return {
            "kind": self.kind.value,
            "at": self.at,
            "duration": self.duration,
            "intensity": self.intensity,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultPlanError(f"bad fault kind: {exc}") from exc
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise FaultPlanError(f"params must be a mapping: {params!r}")
        return cls(
            kind=kind,
            at=float(data.get("at", 0.0)),
            duration=float(data.get("duration", 0.0)),
            intensity=float(data.get("intensity", 1.0)),
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault specs for one run."""

    name: str = "no-faults"
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (zero-overhead path)."""
        return not self.faults

    def kinds(self) -> set[FaultKind]:
        """The distinct fault kinds this plan injects."""
        return {spec.kind for spec in self.faults}

    def of_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        """The specs of one kind, in plan order."""
        return tuple(s for s in self.faults if s.kind is kind)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form."""
        return {
            "name": self.name,
            "faults": [spec.as_dict() for spec in self.faults],
        }

    def to_json(self) -> str:
        """Serialize for ``--faults plan.json``."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output."""
        faults = data.get("faults", [])
        if not isinstance(faults, Sequence) or isinstance(faults, str):
            raise FaultPlanError(f"faults must be a list: {faults!r}")
        return cls(
            name=str(data.get("name", "unnamed")),
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a ``--faults`` JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault-plan JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise FaultPlanError("fault plan must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        """Read a plan file from disk."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def single_fault_plan(
    kind: FaultKind,
    intensity: float,
    at: float = 15.0,
    duration: float | None = None,
) -> FaultPlan:
    """One plan with one fault, with sensible kind-specific scaling.

    The intensity knob maps onto each kind's natural severity axis:
    crash/outage *length*, signaling loss *probability*, clock step
    *seconds*, Byzantine inflation *fraction*.
    """
    if kind is FaultKind.GATEWAY_CRASH:
        spec = FaultSpec(
            kind=kind,
            at=at,
            duration=duration if duration is not None else 2.0 + 8.0 * intensity,
            intensity=intensity,
            params=(("checkpoint_period", 5.0),),
        )
    elif kind is FaultKind.OFCS_OUTAGE:
        spec = FaultSpec(
            kind=kind,
            at=at,
            duration=duration if duration is not None else 5.0 + 20.0 * intensity,
            intensity=intensity,
        )
    elif kind is FaultKind.SIGNALING:
        spec = FaultSpec(
            kind=kind,
            at=0.0,
            duration=duration if duration is not None else 0.0,
            intensity=min(0.9, intensity),
            params=(
                ("drop_rate", min(0.9, intensity)),
                ("duplicate_rate", min(0.5, intensity / 2.0)),
                ("reorder_rate", min(0.5, intensity / 2.0)),
            ),
        )
    elif kind is FaultKind.CLOCK_STEP:
        spec = FaultSpec(
            kind=kind,
            at=at,
            duration=duration if duration is not None else 0.0,
            intensity=intensity,
            params=(("party", "operator"), ("step", 2.0 * intensity)),
        )
    elif kind is FaultKind.BYZANTINE_MONITOR:
        spec = FaultSpec(
            kind=kind,
            at=at,
            duration=duration if duration is not None else 0.0,
            intensity=intensity,
            params=(("mode", "inflate"), ("target", "rrc")),
        )
    else:  # pragma: no cover - exhaustive enum
        raise FaultPlanError(f"unknown fault kind: {kind}")
    return FaultPlan(
        name=f"{kind.value}-i{intensity:g}", faults=(spec,)
    )


def fault_grid(
    kinds: Iterable[FaultKind] = tuple(FaultKind),
    intensities: Iterable[float] = (0.2, 0.5, 0.8),
    at: float = 15.0,
) -> list[FaultPlan]:
    """The (kind x intensity) grid the fault campaign sweeps."""
    return [
        single_fault_plan(kind, intensity, at=at)
        for kind in kinds
        for intensity in intensities
    ]
