"""TLC: the paper's primary contribution.

- :mod:`repro.core.plan` — the data plan (charging weight ``c``, cycle T),
- :mod:`repro.core.records` — usage ground truth and party-side estimates,
- :mod:`repro.core.cancellation` — Algorithm 1, the loss-selfishness
  cancellation game,
- :mod:`repro.core.strategies` — honest, optimal (minimax/maximin),
  random-selfish, and misbehaving negotiation strategies,
- :mod:`repro.core.messages` — signed CDR / CDA / PoC wire messages,
- :mod:`repro.core.protocol` — the Figure 7a state machines,
- :mod:`repro.core.verifier` — Algorithm 2 public verification,
- :mod:`repro.core.gap` — charging-gap metrics (∆, ε, µ).
"""

from repro.core.cancellation import NegotiationResult, negotiate
from repro.core.gap import absolute_gap, gap_ratio, reduction_ratio
from repro.core.plan import DataPlan
from repro.core.records import GroundTruth, UsageView
from repro.core.strategies import (
    HonestStrategy,
    MisbehavingStrategy,
    OptimalStrategy,
    RandomSelfishStrategy,
    Role,
)
from repro.core.verifier import PublicVerifier, VerificationResult

__all__ = [
    "NegotiationResult",
    "negotiate",
    "absolute_gap",
    "gap_ratio",
    "reduction_ratio",
    "DataPlan",
    "GroundTruth",
    "UsageView",
    "HonestStrategy",
    "MisbehavingStrategy",
    "OptimalStrategy",
    "RandomSelfishStrategy",
    "Role",
    "PublicVerifier",
    "VerificationResult",
]
