"""The TLC negotiation protocol (Figure 7 of the paper).

Two :class:`NegotiationAgent` objects — one per party — exchange signed
CDR/CDA/PoC messages after the charging cycle ends.  Either party can
initiate.  The state machine per Figure 7a:

- ``NULL``: initiator sends its CDR.
- on receiving a CDR: accept → reply CDA (own claim + the peer's CDR);
  reject → reply a fresh CDR (re-claim, bounds contracted).
- on receiving a CDA: accept → construct the PoC, send it, done;
  reject → reply a fresh CDR (case 2 of Figure 7b).
- on receiving a PoC: verify, store, done.

Claims and accept/reject decisions come from the party's
:class:`~repro.core.strategies.Strategy`, so the protocol is exactly
Algorithm 1 made concrete over authenticated messages.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro import telemetry
from repro.charging.policy import charged_volume
from repro.core.messages import (
    MessageError,
    ProofOfCharging,
    TlcCda,
    TlcCdr,
)
from repro.core.plan import DataPlan
from repro.core.strategies import Role, Strategy
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.merkle import BatchSignature, sign_batch
from repro.crypto.nonces import NonceFactory


class ProtocolState(enum.Enum):
    """Figure 7a states, named by the last message type sent."""

    NULL = "null"
    CDR = "cdr"
    CDA = "cda"
    POC = "poc"


class ProtocolError(RuntimeError):
    """Raised on signature failures or protocol violations."""


Message = TlcCdr | TlcCda | ProofOfCharging


def message_key(message: Message) -> bytes:
    """The stable wire identity of a signed protocol message.

    Signed messages are immutable once emitted, so the SHA-256 of the
    wire form identifies a message across retransmissions — the dedup
    key the fault-tolerant transport uses to recognise duplicates and
    replay the cached reply instead of re-driving the state machine.
    """
    return hashlib.sha256(message.to_bytes()).digest()


@dataclass(frozen=True)
class BatchSigningConfig:
    """Amortized Merkle-batch attestation of CDR claims.

    **Off by default** — the interactive Figure-7 exchange is unchanged
    (each message is individually signed, because the peer verifies it
    on receipt).  When enabled, an agent additionally retains every CDR
    claim it emits so the full claim stream can be attested afterwards
    with ONE Merkle-root RSA signature (:func:`sign_cdr_batch`), which
    Algorithm 2 checks with one RSA public op via
    :meth:`repro.core.verifier.PublicVerifier.verify_cdr_batch` instead
    of N independent signature verifications.
    """

    enabled: bool = False
    #: Safety bound on how many claims one batch may attest.
    max_batch: int = 4096


def sign_cdr_batch(
    key: PrivateKey, cdrs: Sequence[TlcCdr]
) -> BatchSignature:
    """Attest a stream of CDR claims with one Merkle-root signature.

    The claims may be unsigned (bulk, non-interactive submission — one
    RSA private op covers N records) or carry their interactive
    signatures; the batch covers the signature-free payload bytes either
    way, so both forms attest the same claim content.
    """
    return sign_batch(key, [cdr.payload_bytes() for cdr in cdrs])


@dataclass
class ProtocolOutcome:
    """What a finished negotiation produced."""

    poc: ProofOfCharging | None
    rounds: int
    messages: int
    bytes_on_wire: int
    converged: bool
    transcript: list[Message] = field(default_factory=list)

    @property
    def volume(self) -> float | None:
        """The negotiated charging volume, if agreement was reached."""
        return self.poc.volume if self.poc is not None else None


class NegotiationAgent:
    """One party's protocol endpoint."""

    def __init__(
        self,
        role: Role,
        strategy: Strategy,
        plan: DataPlan,
        private_key: PrivateKey,
        peer_public_key: PublicKey,
        nonce_factory: NonceFactory,
        app_id: str = "tlc-app",
        batch_config: BatchSigningConfig | None = None,
    ) -> None:
        if strategy.role is not role:
            raise ValueError(
                f"strategy role {strategy.role} does not match agent role "
                f"{role}"
            )
        self.role = role
        self.strategy = strategy
        self.plan = plan
        self.private_key = private_key
        self.peer_public_key = peer_public_key
        self.app_id = app_id
        self.state = ProtocolState.NULL
        self.nonce = nonce_factory.fresh()
        self.poc: ProofOfCharging | None = None
        # Algorithm 1 bound tracking (visible to both parties).
        self.lower_bound = 0.0
        self.upper_bound = math.inf
        self.round_index = 0
        self._last_own_claim: float | None = None
        self.batch_config = batch_config or BatchSigningConfig()
        #: CDR claims retained for batch attestation (batching only).
        self.batched_cdrs: list[TlcCdr] = []

    # ------------------------------------------------------------------
    # message construction

    def _next_claim(self) -> float:
        self.round_index += 1
        value = self.strategy.claim(
            self.lower_bound, self.upper_bound, self.round_index
        )
        self._last_own_claim = value
        return value

    def _make_cdr(self, volume: float) -> TlcCdr:
        # The sequence number is the claim's round index: both parties'
        # claim counts never diverge by more than one, which is what
        # Algorithm 2's sequence check enforces against stale splices.
        cdr = TlcCdr(
            party=self.role,
            app_id=self.app_id,
            cycle_start=self.plan.cycle.start,
            cycle_end=self.plan.cycle.end,
            c=self.plan.c,
            sequence=self.round_index,
            nonce=self.nonce,
            volume=volume,
        ).signed(self.private_key)
        if self.batch_config.enabled:
            if len(self.batched_cdrs) >= self.batch_config.max_batch:
                raise ProtocolError(
                    f"CDR batch overflow (> {self.batch_config.max_batch})"
                )
            self.batched_cdrs.append(cdr)
        return cdr

    def _make_cda(self, volume: float, peer_cdr: TlcCdr) -> TlcCda:
        return TlcCda(
            party=self.role,
            app_id=self.app_id,
            cycle_start=self.plan.cycle.start,
            cycle_end=self.plan.cycle.end,
            c=self.plan.c,
            sequence=self.round_index,
            nonce=self.nonce,
            volume=volume,
            peer_cdr=peer_cdr,
        ).signed(self.private_key)

    def _make_poc(self, cda: TlcCda) -> ProofOfCharging:
        own_claim = cda.peer_cdr.volume  # our CDR is embedded in their CDA
        peer_claim = cda.volume
        # Line 8's formula is symmetric in the claim order, so the same
        # call serves whichever party constructs the PoC.
        x = charged_volume(own_claim, peer_claim, self.plan.c)
        edge_nonce = self.nonce if self.role is Role.EDGE else cda.nonce
        operator_nonce = (
            self.nonce if self.role is Role.OPERATOR else cda.nonce
        )
        return ProofOfCharging(
            party=self.role,
            cycle_start=self.plan.cycle.start,
            cycle_end=self.plan.cycle.end,
            c=self.plan.c,
            volume=x,
            cda=cda,
            edge_nonce=edge_nonce,
            operator_nonce=operator_nonce,
        ).signed(self.private_key)

    def attest_batched_cdrs(self) -> BatchSignature | None:
        """One Merkle-root signature over every CDR claim this agent made.

        Returns ``None`` unless batching is enabled and at least one CDR
        was emitted.  The result is what a third party feeds to
        :meth:`repro.core.verifier.PublicVerifier.verify_cdr_batch`.
        """
        if not self.batch_config.enabled or not self.batched_cdrs:
            return None
        return sign_cdr_batch(self.private_key, self.batched_cdrs)

    # ------------------------------------------------------------------
    # validation

    def _check_plan(self, start: float, end: float, c: float) -> None:
        if (start, end) != self.plan.cycle.key() or abs(
            c - self.plan.c
        ) > 1e-9:
            raise ProtocolError(
                "peer message references a different data plan"
            )

    def _check_bounds(self, claim: float) -> bool:
        slack = 1e-9 * max(1.0, abs(claim))
        low_ok = claim >= self.lower_bound - slack
        high_ok = math.isinf(self.upper_bound) or (
            claim <= self.upper_bound + slack
        )
        return low_ok and high_ok

    def _contract_bounds(self, claim_a: float, claim_b: float) -> None:
        self.lower_bound = min(claim_a, claim_b)
        self.upper_bound = max(claim_a, claim_b)

    # ------------------------------------------------------------------
    # protocol steps

    def start(self) -> TlcCdr:
        """Initiate the negotiation by sending the first CDR."""
        if self.state is not ProtocolState.NULL:
            raise ProtocolError(f"cannot start from state {self.state}")
        cdr = self._make_cdr(self._next_claim())
        self.state = ProtocolState.CDR
        return cdr

    def handle(self, message: Message) -> Message | None:
        """Process an incoming message; returns the reply (None if done)."""
        if isinstance(message, TlcCdr):
            return self._handle_cdr(message)
        if isinstance(message, TlcCda):
            return self._handle_cda(message)
        if isinstance(message, ProofOfCharging):
            return self._handle_poc(message)
        raise ProtocolError(f"unknown message type: {type(message)!r}")

    def _handle_cdr(self, cdr: TlcCdr) -> Message:
        if not cdr.verify_signature(self.peer_public_key):
            raise ProtocolError("bad signature on peer CDR")
        self._check_plan(cdr.cycle_start, cdr.cycle_end, cdr.c)

        peer_in_bounds = self._check_bounds(cdr.volume)
        own_claim = (
            self._last_own_claim
            if self.state is ProtocolState.CDR
            and self._last_own_claim is not None
            else self._next_claim()
        )
        accept = peer_in_bounds and self.strategy.decide(
            own_claim=own_claim,
            peer_claim=cdr.volume,
            round_index=self.round_index,
        )
        if accept:
            cda = self._make_cda(own_claim, cdr)
            self.state = ProtocolState.CDA
            return cda
        # Reject: contract bounds over this round's claims and re-claim.
        self._contract_bounds(own_claim, cdr.volume)
        new_cdr = self._make_cdr(self._next_claim())
        self.state = ProtocolState.CDR
        return new_cdr

    def _handle_cda(self, cda: TlcCda) -> Message:
        if self.state is not ProtocolState.CDR:
            raise ProtocolError(
                f"CDA received in state {self.state}; expected CDR"
            )
        if not cda.verify_signature(self.peer_public_key):
            raise ProtocolError("bad signature on peer CDA")
        self._check_plan(cda.cycle_start, cda.cycle_end, cda.c)
        if cda.peer_cdr.volume != self._last_own_claim:
            raise ProtocolError(
                "peer CDA embeds a CDR that does not match our last claim"
            )

        accept = self._check_bounds(cda.volume) and self.strategy.decide(
            own_claim=self._last_own_claim,
            peer_claim=cda.volume,
            round_index=self.round_index,
        )
        if accept:
            poc = self._make_poc(cda)
            self.poc = poc
            self.state = ProtocolState.POC
            return poc
        self._contract_bounds(self._last_own_claim, cda.volume)
        new_cdr = self._make_cdr(self._next_claim())
        self.state = ProtocolState.CDR
        return new_cdr

    def _handle_poc(self, poc: ProofOfCharging) -> None:
        if self.state is not ProtocolState.CDA:
            raise ProtocolError(
                f"PoC received in state {self.state}; expected CDA"
            )
        if not poc.verify_signature(self.peer_public_key):
            raise ProtocolError("bad signature on PoC")
        self._check_plan(poc.cycle_start, poc.cycle_end, poc.c)
        self.poc = poc
        self.state = ProtocolState.POC
        return None


def run_negotiation(
    initiator: NegotiationAgent,
    responder: NegotiationAgent,
    max_messages: int = 200,
) -> ProtocolOutcome:
    """Ping-pong messages between two agents until a PoC or the cap.

    Returns the outcome from the initiator's perspective (both agents end
    up storing the same PoC when the negotiation converges).
    """
    tel = telemetry.current()
    transcript: list[Message] = []
    bytes_on_wire = 0

    message: Message | None = initiator.start()
    transcript.append(message)
    bytes_on_wire += len(message.to_bytes())
    current, other = responder, initiator

    while message is not None and len(transcript) < max_messages:
        try:
            reply = current.handle(message)
        except (ProtocolError, MessageError):
            reply = None
            break
        if reply is None:
            break
        transcript.append(reply)
        bytes_on_wire += len(reply.to_bytes())
        message = reply
        current, other = other, current

    poc = initiator.poc or responder.poc
    rounds = max(initiator.round_index, responder.round_index)
    if tel is not None:
        tel.inc("negotiation_messages", len(transcript), layer="protocol")
        tel.inc("negotiation_bytes_on_wire", bytes_on_wire, layer="protocol")
        tel.observe("negotiation_rounds", rounds, layer="protocol")
        if poc is not None:
            tel.inc("negotiations_converged", layer="protocol")
            tel.set("settled_volume", poc.volume, layer="protocol")
        for msg in transcript:
            tel.event(
                "protocol",
                "message",
                kind=type(msg).__name__,
                party=msg.party.value,
                volume=getattr(msg, "volume", None),
                wire_bytes=len(msg.to_bytes()),
            )
        tel.event(
            "protocol",
            "negotiation_done",
            converged=poc is not None,
            rounds=rounds,
            messages=len(transcript),
            bytes_on_wire=bytes_on_wire,
            volume=poc.volume if poc is not None else None,
        )
    return ProtocolOutcome(
        poc=poc,
        rounds=rounds,
        messages=len(transcript),
        bytes_on_wire=bytes_on_wire,
        converged=poc is not None,
        transcript=transcript,
    )
