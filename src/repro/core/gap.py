"""Charging-gap metrics used throughout the evaluation (§7.1).

- ``∆ = |x − x̂|`` — absolute gap between the charged volume and the fair
  volume (:func:`absolute_gap`),
- ``ε = ∆ / x̂`` — relative gap ratio (:func:`gap_ratio`),
- ``µ = (x_legacy − x_TLC) / x_legacy`` — charged-volume reduction of TLC
  over legacy charging, Figure 15's metric (:func:`reduction_ratio`).
"""

from __future__ import annotations


def absolute_gap(charged: float, fair: float) -> float:
    """∆ = |x − x̂| in the same byte unit as the inputs."""
    if charged < 0 or fair < 0:
        raise ValueError("volumes must be non-negative")
    return abs(charged - fair)


def gap_ratio(charged: float, fair: float) -> float:
    """ε = ∆ / x̂ (0 when there was no usage at all)."""
    if fair == 0:
        return 0.0 if charged == 0 else float("inf")
    return absolute_gap(charged, fair) / fair


def reduction_ratio(legacy_charged: float, tlc_charged: float) -> float:
    """µ = (x_legacy − x_TLC) / x_legacy, Figure 15's reduction metric."""
    if legacy_charged < 0 or tlc_charged < 0:
        raise ValueError("volumes must be non-negative")
    if legacy_charged == 0:
        return 0.0
    return (legacy_charged - tlc_charged) / legacy_charged


def per_hour(volume_bytes: float, elapsed_seconds: float) -> float:
    """Scale a volume measured over ``elapsed_seconds`` to bytes/hour."""
    if elapsed_seconds <= 0:
        raise ValueError(f"elapsed time must be positive: {elapsed_seconds}")
    return volume_bytes * 3600.0 / elapsed_seconds


MB = 1_000_000.0


def to_mb(volume_bytes: float) -> float:
    """Bytes to megabytes (decimal, as the paper reports)."""
    return volume_bytes / MB
