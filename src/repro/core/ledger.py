"""PoC ledger and the third-party verification service.

After each cycle both parties "sign and store" the PoC (Algorithm 1,
line 9) — the ledger is that store: an append-only, disk-persistable
archive of charging receipts, queryable by app and cycle.  On top of it,
:class:`VerificationService` models the §5.3.4 deployments (FCC, court,
MVNO): a key registry per app plus batch verification with audit
statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.messages import MessageError, ProofOfCharging
from repro.core.plan import DataPlan
from repro.core.verifier import PublicVerifier, VerificationResult
from repro.crypto.keys import PublicKey


@dataclass(frozen=True)
class LedgerEntry:
    """One archived charging receipt."""

    app_id: str
    cycle_start: float
    cycle_end: float
    volume: float
    poc_bytes: bytes

    def poc(self) -> ProofOfCharging:
        """Decode the stored proof."""
        return ProofOfCharging.from_bytes(self.poc_bytes)


class PocLedger:
    """Append-only archive of Proofs-of-Charging."""

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, app_id: str, poc: ProofOfCharging) -> LedgerEntry:
        """Archive a finished negotiation's PoC."""
        entry = LedgerEntry(
            app_id=app_id,
            cycle_start=poc.cycle_start,
            cycle_end=poc.cycle_end,
            volume=poc.volume,
            poc_bytes=poc.to_bytes(),
        )
        self._entries.append(entry)
        return entry

    def entries_for(self, app_id: str) -> list[LedgerEntry]:
        """All receipts for one app, in archive order."""
        return [e for e in self._entries if e.app_id == app_id]

    def entries_between(
        self, start: float, end: float
    ) -> list[LedgerEntry]:
        """Receipts whose cycle overlaps [start, end)."""
        return [
            e
            for e in self._entries
            if e.cycle_start < end and e.cycle_end > start
        ]

    def total_volume(self, app_id: str) -> float:
        """Sum of negotiated volumes across an app's receipts."""
        return sum(e.volume for e in self.entries_for(app_id))

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: str | Path) -> None:
        """Persist as JSON lines (PoC bytes hex-encoded)."""
        path = Path(path)
        with path.open("w", encoding="ascii") as fh:
            for entry in self._entries:
                fh.write(
                    json.dumps(
                        {
                            "app_id": entry.app_id,
                            "cycle_start": entry.cycle_start,
                            "cycle_end": entry.cycle_end,
                            "volume": entry.volume,
                            "poc": entry.poc_bytes.hex(),
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "PocLedger":
        """Reload a ledger saved with :meth:`save`.

        Each record's PoC bytes are parsed on load, so a corrupted file
        fails here rather than at verification time.
        """
        ledger = cls()
        path = Path(path)
        with path.open("r", encoding="ascii") as fh:
            for line_number, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                obj = json.loads(line)
                poc_bytes = bytes.fromhex(obj["poc"])
                try:
                    ProofOfCharging.from_bytes(poc_bytes)
                except (MessageError, ValueError) as exc:
                    raise ValueError(
                        f"corrupt PoC at line {line_number}: {exc}"
                    ) from exc
                ledger._entries.append(
                    LedgerEntry(
                        app_id=obj["app_id"],
                        cycle_start=obj["cycle_start"],
                        cycle_end=obj["cycle_end"],
                        volume=obj["volume"],
                        poc_bytes=poc_bytes,
                    )
                )
        return ledger


@dataclass
class AuditReport:
    """Batch verification statistics."""

    total: int = 0
    accepted: int = 0
    rejected: int = 0
    rejection_reasons: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rejection_reasons is None:
            self.rejection_reasons = {}

    @property
    def acceptance_rate(self) -> float:
        """Fraction of presented PoCs that verified."""
        return self.accepted / self.total if self.total else 0.0


class VerificationService:
    """A third-party verifier with a per-app key/plan registry."""

    def __init__(self) -> None:
        self._verifier = PublicVerifier()
        self._registry: dict[str, tuple[DataPlan, PublicKey, PublicKey]] = {}

    def register(
        self,
        app_id: str,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> None:
        """Register the public material for one app's charging."""
        self._registry[app_id] = (plan, edge_key, operator_key)

    def verify_entry(self, entry: LedgerEntry) -> VerificationResult:
        """Algorithm 2 on one archived receipt."""
        try:
            plan, edge_key, operator_key = self._registry[entry.app_id]
        except KeyError:
            return VerificationResult(
                False, f"no registration for app {entry.app_id!r}"
            )
        return self._verifier.verify(
            entry.poc_bytes, plan, edge_key, operator_key
        )

    def audit(self, entries: list[LedgerEntry]) -> AuditReport:
        """Verify a batch and summarize the outcomes."""
        report = AuditReport()
        for entry in entries:
            report.total += 1
            result = self.verify_entry(entry)
            if result.ok:
                report.accepted += 1
            else:
                report.rejected += 1
                report.rejection_reasons[result.reason] = (
                    report.rejection_reasons.get(result.reason, 0) + 1
                )
        return report
