"""Dispute resolution: what the verified PoC is *for* (§5.3.4).

The paper motivates public verifiability with the Project-Fi lawsuit:
without proofs, "it is difficult for even the laws to ensure that the
network and edge are well-behaved".  This module is the court's side of
that workflow: given the operator's issued bill and the charging receipt
(PoC) either party presents, the arbiter

1. verifies the PoC (Algorithm 2, via :class:`PublicVerifier`),
2. prices the *proven* volume under the rate plan,
3. rules: over-billed (refund due), under-billed (arrears due), or
   consistent — or throws the case out if the proof does not verify.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.charging.billing import Bill, RatePlan
from repro.core.messages import ProofOfCharging
from repro.core.plan import DataPlan
from repro.core.verifier import PublicVerifier
from repro.crypto.keys import PublicKey


class Ruling(enum.Enum):
    """The arbiter's possible outcomes."""

    CONSISTENT = "consistent"
    OVERBILLED = "overbilled"        # operator owes a refund
    UNDERBILLED = "underbilled"      # edge owes arrears
    PROOF_REJECTED = "proof-rejected"


@dataclass(frozen=True)
class DisputeResolution:
    """The arbiter's ruling for one cycle."""

    ruling: Ruling
    billed_amount: float
    proven_amount: float | None
    adjustment: float  # positive = refund to the edge
    reason: str = ""

    @property
    def refund_due(self) -> float:
        """Money the operator must return (0 when none)."""
        return max(0.0, self.adjustment)

    @property
    def arrears_due(self) -> float:
        """Money the edge must still pay (0 when none)."""
        return max(0.0, -self.adjustment)


class DisputeArbiter:
    """An independent third party settling billing disputes with PoCs."""

    def __init__(
        self,
        rate_plan: RatePlan,
        amount_tolerance: float = 1e-6,
    ) -> None:
        self.rate_plan = rate_plan
        self.amount_tolerance = float(amount_tolerance)
        self._verifier = PublicVerifier()

    def price(self, volume_bytes: float) -> Bill:
        """The plan-priced bill for a proven volume."""
        return self.rate_plan.bill_for(volume_bytes)

    def resolve(
        self,
        billed_amount: float,
        poc: ProofOfCharging | bytes,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> DisputeResolution:
        """Rule on one cycle's bill against its charging receipt."""
        if billed_amount < 0:
            raise ValueError(f"negative billed amount: {billed_amount}")
        verdict = self._verifier.verify(poc, plan, edge_key, operator_key)
        if not verdict.ok:
            return DisputeResolution(
                ruling=Ruling.PROOF_REJECTED,
                billed_amount=billed_amount,
                proven_amount=None,
                adjustment=0.0,
                reason=verdict.reason,
            )

        proven_bill = self.price(verdict.volume)
        proven_amount = proven_bill.total
        delta = billed_amount - proven_amount
        if abs(delta) <= self.amount_tolerance * max(1.0, proven_amount):
            ruling = Ruling.CONSISTENT
        elif delta > 0:
            ruling = Ruling.OVERBILLED
        else:
            ruling = Ruling.UNDERBILLED
        return DisputeResolution(
            ruling=ruling,
            billed_amount=billed_amount,
            proven_amount=proven_amount,
            adjustment=delta,
        )
