"""Algorithm 1: loss-selfishness cancellation.

The engine runs the claim/decide loop between two
:class:`~repro.core.strategies.Strategy` objects, enforcing the paper's
rules:

- claims must fall inside the current bounds ``(xL, xU)`` (line 4); a
  claim outside them is visible to the peer, which rejects it (§5.1's
  misbehaviour discussion) — the engine flags the violation;
- when both parties accept, the charging volume is line 8's two-branch
  formula (:func:`repro.charging.policy.charged_volume`);
- on any rejection, the bounds contract to the span of this round's
  claims (line 12) and the parties re-claim.

The loop is capped at ``max_rounds`` because a buggy party can otherwise
reject forever (the paper notes neither side benefits from that; the
engine reports the non-convergence instead of spinning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import telemetry
from repro.charging.policy import charged_volume
from repro.core.plan import DataPlan
from repro.core.strategies import Strategy

# Claims within this relative slack of a bound still count as "inside":
# bounds tighten through floating-point claim values.
_BOUND_SLACK = 1e-9


@dataclass(frozen=True)
class RoundRecord:
    """One negotiation round's claims and decisions."""

    round_index: int
    lower_bound: float
    upper_bound: float
    edge_claim: float
    operator_claim: float
    edge_accepts: bool
    operator_accepts: bool
    bound_violation: bool


@dataclass
class NegotiationResult:
    """Outcome of Algorithm 1."""

    converged: bool
    volume: float | None
    rounds: int
    transcript: list[RoundRecord] = field(default_factory=list)
    bound_violations: int = 0

    @property
    def final_claims(self) -> tuple[float, float] | None:
        """(edge claim, operator claim) of the accepted round."""
        if not self.converged or not self.transcript:
            return None
        last = self.transcript[-1]
        return (last.edge_claim, last.operator_claim)


def _inside(value: float, low: float, high: float) -> bool:
    slack = _BOUND_SLACK * max(1.0, abs(value), abs(low))
    return (value >= low - slack) and (value <= high + slack)


def negotiate(
    edge: Strategy,
    operator: Strategy,
    plan: DataPlan,
    max_rounds: int = 64,
) -> NegotiationResult:
    """Run Algorithm 1 between an edge and an operator strategy.

    Parameters
    ----------
    edge, operator:
        The two players.  Their ``claim``/``decide`` methods are called
        exactly as the algorithm's lines 4 and 6 (exchange order does not
        affect the result, as the paper notes).
    plan:
        Supplies the lost-data weight ``c`` for line 8.
    max_rounds:
        Termination cap for misbehaving players.
    """
    tel = telemetry.current()
    x_lower = 0.0
    x_upper = math.inf
    transcript: list[RoundRecord] = []
    violations = 0

    for round_index in range(1, max_rounds + 1):
        edge_claim = edge.claim(x_lower, x_upper, round_index)
        operator_claim = operator.claim(x_lower, x_upper, round_index)

        violation = not (
            _inside(edge_claim, x_lower, x_upper)
            and _inside(operator_claim, x_lower, x_upper)
        )
        if violation:
            violations += 1

        if violation:
            # A claim outside the agreed bounds is locally detectable by
            # the peer (line 12's constraint is public), so the round is
            # rejected outright.
            edge_accepts = False
            operator_accepts = False
        else:
            edge_accepts = edge.decide(
                own_claim=edge_claim,
                peer_claim=operator_claim,
                round_index=round_index,
            )
            operator_accepts = operator.decide(
                own_claim=operator_claim,
                peer_claim=edge_claim,
                round_index=round_index,
            )

        transcript.append(
            RoundRecord(
                round_index=round_index,
                lower_bound=x_lower,
                upper_bound=x_upper,
                edge_claim=edge_claim,
                operator_claim=operator_claim,
                edge_accepts=edge_accepts,
                operator_accepts=operator_accepts,
                bound_violation=violation,
            )
        )
        if tel is not None:
            tel.event(
                "cancellation",
                "claim_round",
                round=round_index,
                edge_claim=edge_claim,
                operator_claim=operator_claim,
                edge_accepts=edge_accepts,
                operator_accepts=operator_accepts,
                bound_violation=violation,
            )

        if edge_accepts and operator_accepts:
            volume = charged_volume(operator_claim, edge_claim, plan.c)
            if tel is not None:
                tel.observe(
                    "negotiation_rounds", round_index, layer="cancellation"
                )
                tel.inc("negotiations_converged", layer="cancellation")
                tel.set("settled_volume", volume, layer="cancellation")
            return NegotiationResult(
                converged=True,
                volume=volume,
                rounds=round_index,
                transcript=transcript,
                bound_violations=violations,
            )

        # Line 12: contract the bounds to the span of this round's claims.
        new_lower = min(edge_claim, operator_claim)
        new_upper = max(edge_claim, operator_claim)
        # Keep the bounds inside the previous window even when a claim
        # violated it, so a misbehaving player cannot re-widen the range.
        x_lower = max(x_lower, min(new_lower, x_upper))
        x_upper = (
            min(x_upper, new_upper) if not math.isinf(x_upper) else new_upper
        )
        if x_upper < x_lower:
            x_lower, x_upper = x_upper, x_lower

    if tel is not None:
        tel.observe("negotiation_rounds", max_rounds, layer="cancellation")
    return NegotiationResult(
        converged=False,
        volume=None,
        rounds=max_rounds,
        transcript=transcript,
        bound_violations=violations,
    )
