"""Event-driven negotiation: the protocol run over a simulated link.

``run_negotiation`` ping-pongs messages synchronously; this runner plays
the same agents over the event loop with a propagation delay per
direction and a per-party processing delay (the device-profile crypto
cost), so the *negotiation wall-clock* of Figure 17 is simulated rather
than modelled: one round costs

    sign + fly + (verify + sign) + fly + (verify + sign) + fly + verify

which for the 3-message exchange is the paper's ~1.5 RTT plus the
crypto share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import Message, NegotiationAgent, ProtocolError
from repro.sim.events import EventLoop


@dataclass
class SimulatedOutcome:
    """A finished (or failed) in-simulation negotiation."""

    converged: bool
    elapsed: float
    messages: int
    volume: float | None
    failure: str = ""


class _Endpoint:
    """One side's event-driven wrapper around a NegotiationAgent."""

    def __init__(
        self,
        loop: EventLoop,
        agent: NegotiationAgent,
        processing_delay: float,
        name: str,
    ) -> None:
        self.loop = loop
        self.agent = agent
        self.processing_delay = float(processing_delay)
        self.name = name
        self.peer: "_Endpoint | None" = None
        self.link_delay = 0.0
        self.session: "_Session | None" = None

    def transmit(self, message: Message) -> None:
        assert self.peer is not None
        self.loop.schedule_in(
            self.link_delay,
            lambda m=message: self.peer.receive(m),
            label=f"{self.name}-tx",
        )

    def receive(self, message: Message) -> None:
        # Verify-then-maybe-sign happens during the processing delay.
        self.loop.schedule_in(
            self.processing_delay,
            lambda m=message: self._process(m),
            label=f"{self.name}-rx",
        )

    def _process(self, message: Message) -> None:
        assert self.session is not None
        try:
            reply = self.agent.handle(message)
        except ProtocolError as exc:
            self.session.fail(str(exc))
            return
        if reply is None:
            self.session.finish()
            return
        self.session.count_message()
        if self.session.over_budget():
            self.session.fail("message budget exhausted")
            return
        self.transmit(reply)
        if self.agent.poc is not None:
            # We just sent the PoC; the negotiation is complete for us
            # (the peer finishes when it receives it).
            pass


class _Session:
    """Shared bookkeeping for one simulated negotiation."""

    def __init__(self, loop: EventLoop, max_messages: int) -> None:
        self.loop = loop
        self.max_messages = max_messages
        self.started_at = loop.now
        self.finished_at: float | None = None
        self.messages = 0
        self.failure = ""
        self.done = False

    def count_message(self) -> None:
        self.messages += 1

    def over_budget(self) -> bool:
        return self.messages >= self.max_messages

    def finish(self) -> None:
        if not self.done:
            self.done = True
            self.finished_at = self.loop.now

    def fail(self, reason: str) -> None:
        if not self.done:
            self.done = True
            self.failure = reason
            self.finished_at = self.loop.now


def run_negotiation_simulated(
    loop: EventLoop,
    initiator: NegotiationAgent,
    responder: NegotiationAgent,
    one_way_delay: float,
    initiator_processing: float = 0.0,
    responder_processing: float = 0.0,
    max_messages: int = 100,
) -> SimulatedOutcome:
    """Run a full negotiation over the event loop; returns sim timing."""
    if one_way_delay < 0:
        raise ValueError(f"negative link delay: {one_way_delay}")
    session = _Session(loop, max_messages)
    a = _Endpoint(loop, initiator, initiator_processing, "initiator")
    b = _Endpoint(loop, responder, responder_processing, "responder")
    a.peer, b.peer = b, a
    a.link_delay = b.link_delay = float(one_way_delay)
    a.session = b.session = session

    def start() -> None:
        first = initiator.start()
        session.count_message()
        a.transmit(first)

    # The initiator signs its first CDR during its processing delay.
    loop.schedule_in(initiator_processing, start, label="negotiation-start")
    loop.run(until=loop.now + 3600.0)

    poc = initiator.poc or responder.poc
    elapsed = (
        (session.finished_at - session.started_at)
        if session.finished_at is not None
        else 0.0
    )
    return SimulatedOutcome(
        converged=poc is not None,
        elapsed=elapsed,
        messages=session.messages,
        volume=poc.volume if poc is not None else None,
        failure=session.failure,
    )
