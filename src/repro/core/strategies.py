"""Negotiation strategies for Algorithm 1.

Roles and their incentives (§3.4): the *edge* pays, so it minimizes the
charged volume; the *operator* is paid, so it maximizes it.  Each strategy
works from the party's own :class:`~repro.core.records.UsageView` — its
monitors' estimates of (x̂e, x̂o) — never from the ground truth.

Strategies provided:

- :class:`HonestStrategy` — report your own measured quantity and accept
  anything consistent with your records (cross-check with tolerance).
- :class:`OptimalStrategy` — the paper's minimax/maximin play (§5.1,
  proof of Theorem 3): the edge claims its estimate of x̂o, the operator
  claims its estimate of x̂e.  Converges in one round against itself
  (Theorem 4) and yields x = x̂.
- :class:`RandomSelfishStrategy` — §7.1's TLC-random: selfish but unaware
  of the optimal play; claims uniformly in the feasible band and haggles a
  few rounds before accepting.
- :class:`MisbehavingStrategy` — rejects everything and/or ignores the
  bound constraint; used to test the engine's termination and the
  bounded-charging property under misbehaviour.
"""

from __future__ import annotations

import enum
import math
import random
from typing import Protocol

from repro.core.records import UsageView

# Relative cross-check tolerance: a peer claim within this fraction of the
# local estimate is considered consistent.  The paper's monitors disagree
# by ~2% on average (Figure 18), so 8% accommodates the tail without
# letting gross selfishness through.
DEFAULT_CROSS_CHECK_TOLERANCE = 0.08


class Role(enum.Enum):
    """Which side of the negotiation a strategy plays."""

    EDGE = "edge"          # minimizes the charge
    OPERATOR = "operator"  # maximizes the charge


class Strategy(Protocol):
    """The Algorithm 1 player interface."""

    role: Role

    def claim(
        self, lower_bound: float, upper_bound: float, round_index: int
    ) -> float:
        """Report a charging volume within the current bounds (line 4)."""
        ...

    def decide(
        self, own_claim: float, peer_claim: float, round_index: int
    ) -> bool:
        """Accept or reject this round's claims (line 6)."""
        ...


def _clamp(value: float, low: float, high: float) -> float:
    if math.isinf(high):
        return max(value, low)
    return min(max(value, low), high)


class _ViewStrategy:
    """Shared plumbing: a role, a usage view, and the cross-check test."""

    def __init__(
        self,
        role: Role,
        view: UsageView,
        cross_check_tolerance: float = DEFAULT_CROSS_CHECK_TOLERANCE,
    ) -> None:
        self.role = role
        self.view = view.clamped()
        self.tolerance = float(cross_check_tolerance)

    def _cross_check_ok(self, peer_claim: float) -> bool:
        """The §4 cross-check, from this party's perspective.

        The edge rejects an operator claim above its sent estimate
        (``xo > x̂e`` means the network claims to have received more than
        was ever sent); the operator rejects an edge claim below its
        received estimate (``xe < x̂o``).
        """
        if self.role is Role.EDGE:
            ceiling = self.view.sent_estimate * (1.0 + self.tolerance)
            return peer_claim <= ceiling
        floor = self.view.received_estimate * (1.0 - self.tolerance)
        return peer_claim >= floor


class HonestStrategy(_ViewStrategy):
    """Report the truthful local record; accept consistent peers."""

    def claim(
        self, lower_bound: float, upper_bound: float, round_index: int
    ) -> float:
        if self.role is Role.EDGE:
            value = self.view.sent_estimate
        else:
            value = self.view.received_estimate
        return _clamp(value, lower_bound, upper_bound)

    def decide(
        self, own_claim: float, peer_claim: float, round_index: int
    ) -> bool:
        return self._cross_check_ok(peer_claim)


class OptimalStrategy(_ViewStrategy):
    """Theorem 3's rational play: xe = x̂o (edge), xo = x̂e (operator).

    With line 8's symmetric formula, the pair (x̂o, x̂e) evaluates to
    exactly x̂ = x̂o + c·(x̂e − x̂o), and both parties accept immediately
    because each other's claim passes the cross-check — the 1-round
    convergence of Theorem 4.
    """

    def claim(
        self, lower_bound: float, upper_bound: float, round_index: int
    ) -> float:
        if self.role is Role.EDGE:
            value = self.view.received_estimate  # minimax: claim x̂o
        else:
            value = self.view.sent_estimate      # maximin: claim x̂e
        return _clamp(value, lower_bound, upper_bound)

    def decide(
        self, own_claim: float, peer_claim: float, round_index: int
    ) -> bool:
        return self._cross_check_ok(peer_claim)


class RandomSelfishStrategy(_ViewStrategy):
    """§7.1's TLC-random: selfish, but unaware of the optimal strategy.

    Each round the party draws its claim uniformly from the feasible band
    (its estimate of [x̂o, x̂e]) intersected with the current bounds —
    biased toward its own interest by an ``overshoot`` that may push the
    first claims slightly outside the other party's comfort zone.  It
    accepts a consistent peer claim with a probability that rises with the
    round index (haggling fatigue), which produces the paper's 2.7–4.6
    average rounds while guaranteeing termination.
    """

    def __init__(
        self,
        role: Role,
        view: UsageView,
        rng: random.Random,
        overshoot: float = 0.06,
        base_accept_probability: float = 0.35,
        patience_rounds: int = 10,
        cross_check_tolerance: float = DEFAULT_CROSS_CHECK_TOLERANCE,
    ) -> None:
        super().__init__(role, view, cross_check_tolerance)
        self.rng = rng
        self.overshoot = float(overshoot)
        self.base_accept_probability = float(base_accept_probability)
        self.patience_rounds = int(patience_rounds)

    def claim(
        self, lower_bound: float, upper_bound: float, round_index: int
    ) -> float:
        low = self.view.received_estimate
        high = self.view.sent_estimate
        if self.role is Role.OPERATOR:
            # Over-claim: up to overshoot above the sent estimate.
            high = high * (1.0 + self.overshoot)
        else:
            # Under-claim: down to overshoot below the received estimate.
            low = low * (1.0 - self.overshoot)
        low = _clamp(low, lower_bound, upper_bound)
        high = _clamp(high, lower_bound, upper_bound)
        if high < low:
            low, high = high, low
        if high == low:
            return low
        return self.rng.uniform(low, high)

    def decide(
        self, own_claim: float, peer_claim: float, round_index: int
    ) -> bool:
        if not self._cross_check_ok(peer_claim):
            return False
        if round_index >= self.patience_rounds:
            return True
        # Haggling fatigue: the longer the negotiation, the likelier the
        # party settles (neither side benefits from more rounds, §5.1).
        p = 1.0 - (1.0 - self.base_accept_probability) * (
            0.75 ** (round_index - 1)
        )
        return self.rng.random() < p


class MisbehavingStrategy:
    """A buggy/hostile player for robustness tests.

    ``reject_all`` keeps rejecting forever; ``ignore_bounds`` claims
    regardless of the negotiated bounds (detected by the engine and
    auto-rejected, per §5.1's misbehaviour discussion); ``escalation``
    grows the claim each round, so it strays *outside* the contracted
    bounds rather than sitting on their boundary.
    """

    def __init__(
        self,
        role: Role,
        fixed_claim: float,
        reject_all: bool = True,
        ignore_bounds: bool = True,
        escalation: float = 1.0,
    ) -> None:
        self.role = role
        self.fixed_claim = float(fixed_claim)
        self.reject_all = reject_all
        self.ignore_bounds = ignore_bounds
        self.escalation = float(escalation)

    def claim(
        self, lower_bound: float, upper_bound: float, round_index: int
    ) -> float:
        value = self.fixed_claim * self.escalation ** (round_index - 1)
        if self.ignore_bounds:
            return value
        return _clamp(value, lower_bound, upper_bound)

    def decide(
        self, own_claim: float, peer_claim: float, round_index: int
    ) -> bool:
        return not self.reject_all
