"""TLC for generic mobile data charging (§8 + Appendix D).

The core scheme assumes the sender-side monitor sits next to the 4G/5G
core (true for edge servers).  For a *generic* Internet service the
downlink path gains a segment the operator never sees::

    Internet server --[x̂'e]--> (Internet loss) --> 4G/5G core --[x̂e]-->
        (RAN loss) --> device --[x̂o]

The edge/user can only report the Internet server's sent volume x̂'e >=
x̂e, so TLC's negotiated volume becomes x̂' = x̂o + c (x̂'e − x̂o) and the
user is over-charged by exactly

    x̂' − x̂ = c (x̂'e − x̂e)

— Appendix D's bound: no more than the weighted loss between the server
and the cellular gateway, which still beats legacy 4G/5G's unbounded
over-charging.  This module models the three-point pipeline and exposes
the bound so experiments can verify it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charging.policy import charged_volume
from repro.core.records import GroundTruth


@dataclass(frozen=True)
class GenericPathTruth:
    """Ground truth for the three metering points of the generic path."""

    internet_sent: float   # x̂'e at the Internet server
    core_received: float   # x̂e at the 4G/5G core ingress
    device_received: float  # x̂o at the device

    def __post_init__(self) -> None:
        if min(
            self.internet_sent, self.core_received, self.device_received
        ) < 0:
            raise ValueError("volumes must be non-negative")
        if self.core_received > self.internet_sent + 1e-9:
            raise ValueError(
                "core cannot receive more than the server sent"
            )
        if self.device_received > self.core_received + 1e-9:
            raise ValueError(
                "device cannot receive more than the core forwarded"
            )

    @property
    def internet_loss(self) -> float:
        """Bytes lost between the Internet server and the 4G/5G core."""
        return self.internet_sent - self.core_received

    @property
    def ran_loss(self) -> float:
        """Bytes lost between the core and the device."""
        return self.core_received - self.device_received

    def cellular_truth(self) -> GroundTruth:
        """The (x̂e, x̂o) pair of the cellular segment only."""
        return GroundTruth(
            sent=self.core_received, received=self.device_received
        )

    def ideal_volume(self, c: float) -> float:
        """x̂: the charge if the core-received volume were reportable."""
        return charged_volume(self.device_received, self.core_received, c)

    def negotiated_volume(self, c: float) -> float:
        """x̂': what TLC negotiates when the edge reports x̂'e."""
        return charged_volume(self.device_received, self.internet_sent, c)

    def overcharge(self, c: float) -> float:
        """x̂' − x̂: the Appendix D over-charging."""
        return self.negotiated_volume(c) - self.ideal_volume(c)

    def overcharge_bound(self, c: float) -> float:
        """Appendix D's bound: c · (x̂'e − x̂e)."""
        if not 0.0 <= c <= 1.0:
            raise ValueError(f"charging weight c out of [0,1]: {c}")
        return c * self.internet_loss


def appendix_d_bound_holds(truth: GenericPathTruth, c: float) -> bool:
    """Check x̂' − x̂ == c (x̂'e − x̂e) (exact for the paper's formula)."""
    return abs(truth.overcharge(c) - truth.overcharge_bound(c)) <= 1e-6 * max(
        1.0, truth.internet_sent
    )


@dataclass(frozen=True)
class GenericChargingOutcome:
    """Comparison of charging options for a generic downlink cycle."""

    truth: GenericPathTruth
    c: float

    @property
    def legacy_charged(self) -> float:
        """Legacy 4G/5G bills the gateway count (core ingress)."""
        return self.truth.core_received

    @property
    def tlc_charged(self) -> float:
        """TLC's negotiated volume with the edge reporting x̂'e."""
        return self.truth.negotiated_volume(self.c)

    @property
    def ideal_charged(self) -> float:
        """The unreachable ideal using the core-received volume."""
        return self.truth.ideal_volume(self.c)

    @property
    def tlc_overcharge(self) -> float:
        """TLC's bounded over-charge vs the ideal."""
        return self.tlc_charged - self.ideal_charged

    @property
    def legacy_overcharge(self) -> float:
        """Legacy's over-charge vs the ideal (RAN loss weighted)."""
        return self.legacy_charged - self.ideal_charged
