"""The data plan agreed between the edge app vendor and the operator.

Setup step (1) of §5.3.1: before any charging cycle, both parties agree on
the cycle ``T = (T_start, T_end)`` and the lost-data charging weight
``c ∈ [0, 1]``, and make them public.  Every TLC message embeds ``(T, c)``
and the verifier rejects PoCs whose plan does not match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charging.cycle import ChargingCycle


@dataclass(frozen=True)
class DataPlan:
    """The public plan parameters a negotiation runs under."""

    cycle: ChargingCycle
    loss_weight: float  # the constant c

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_weight <= 1.0:
            raise ValueError(
                f"loss weight c out of [0,1]: {self.loss_weight}"
            )

    @property
    def c(self) -> float:
        """The paper's name for the loss weight."""
        return self.loss_weight

    def matches(self, other: "DataPlan", c_tolerance: float = 1e-9) -> bool:
        """Plan-consistency check used by Algorithm 2 (lines 2-4)."""
        return (
            self.cycle.key() == other.cycle.key()
            and abs(self.loss_weight - other.loss_weight) <= c_tolerance
        )
