"""Usage ground truth and per-party views.

Table 1 notation:

- ``x̂e`` — bytes the edge actually sent (:attr:`GroundTruth.sent`),
- ``x̂o`` — bytes the network/receiver actually received
  (:attr:`GroundTruth.received`), with the invariant ``x̂o <= x̂e``,
- ``x̂ = x̂o + c (x̂e − x̂o)`` — the fair charging volume
  (:meth:`GroundTruth.fair_volume`).

Neither party sees the ground truth directly; each works from a
:class:`UsageView` — its monitors' estimates of both quantities, carrying
the measurement error Figure 18 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.charging.policy import charged_volume


@dataclass(frozen=True)
class GroundTruth:
    """The true (simulation-side) usage pair for one charging cycle."""

    sent: float      # x̂e
    received: float  # x̂o

    def __post_init__(self) -> None:
        if self.sent < 0 or self.received < 0:
            raise ValueError("usage volumes must be non-negative")
        if self.received > self.sent + 1e-9:
            raise ValueError(
                f"received ({self.received}) cannot exceed sent "
                f"({self.sent}): data does not materialize in transit"
            )

    @property
    def loss(self) -> float:
        """Bytes lost in delivery: ``x̂e − x̂o``."""
        return max(0.0, self.sent - self.received)

    def fair_volume(self, c: float) -> float:
        """The plan-prescribed charging volume x̂ (Equation 1)."""
        return charged_volume(self.received, self.sent, c)

    @classmethod
    def merged(cls, truths: Iterable["GroundTruth"]) -> "GroundTruth":
        """The population ground truth: per-UE pairs summed.

        Usage volumes are additive across independent UE sessions, so
        the merged pair is the exact population truth whatever the
        grouping — the charging-state half of the shard-merge contract
        (see :mod:`repro.experiments.sharding`).  An empty iterable is
        the identity (0, 0).
        """
        sent = 0.0
        received = 0.0
        for truth in truths:
            sent += truth.sent
            received += truth.received
        return cls(sent=sent, received=received)


@dataclass(frozen=True)
class UsageView:
    """One party's monitor-derived estimates of (x̂e, x̂o).

    ``sent_estimate`` is the party's belief about x̂e and
    ``received_estimate`` about x̂o.  §5.2: the operator infers x̂e from
    its gateway counters and x̂o from RRC COUNTER CHECK; the edge infers
    x̂e from its sender monitor and x̂o from its receiver-side monitor.
    """

    sent_estimate: float
    received_estimate: float

    def __post_init__(self) -> None:
        if self.sent_estimate < 0 or self.received_estimate < 0:
            raise ValueError("usage estimates must be non-negative")

    def clamped(self) -> "UsageView":
        """A view with ``received <= sent`` enforced (monitor noise can
        locally invert the pair; claims built from it must not)."""
        if self.received_estimate <= self.sent_estimate:
            return self
        return UsageView(
            sent_estimate=self.received_estimate,
            received_estimate=self.received_estimate,
        )

    @classmethod
    def merged(cls, views: Iterable["UsageView"]) -> "UsageView":
        """The population view: per-UE monitor estimates summed.

        Each party's monitors read per-session byte counters, so its
        belief about a UE population is the sum of its per-UE beliefs.
        Algorithm 1 settlement over a sharded population negotiates
        once, from the merged views (never per shard) — see
        :mod:`repro.experiments.sharding`.  An empty iterable is the
        identity (0, 0).
        """
        sent = 0.0
        received = 0.0
        for view in views:
            sent += view.sent_estimate
            received += view.received_estimate
        return cls(sent_estimate=sent, received_estimate=received)

    @classmethod
    def exact(cls, truth: GroundTruth) -> "UsageView":
        """A perfectly accurate view (no monitor error)."""
        return cls(
            sent_estimate=truth.sent, received_estimate=truth.received
        )

    @classmethod
    def with_errors(
        cls,
        truth: GroundTruth,
        sent_error: float,
        received_error: float,
    ) -> "UsageView":
        """A view with fractional errors applied to each estimate.

        ``sent_error=+0.02`` means the party over-measures x̂e by 2%.
        """
        return cls(
            sent_estimate=max(0.0, truth.sent * (1.0 + sent_error)),
            received_estimate=max(
                0.0, truth.received * (1.0 + received_error)
            ),
        )
