"""Algorithm 2: public verification of a Proof-of-Charging.

An independent third party (FCC, court, MVNO — §5.3.4) receives a PoC plus
the public data plan and both parties' public keys, and checks — without
ever seeing the data transfer — that:

1. every signature layer is valid (PoC by its constructor, the embedded
   CDA by the other party, the inner CDR by the constructor again);
2. the data plan ``(T, c)`` is consistent across all layers and equal to
   the verifier's copy (lines 2-4);
3. nonces and sequence numbers are coherent, and the nonce pair has not
   been presented before (replay defence, lines 5-7);
4. the negotiated volume equals line 8's formula recomputed from the two
   embedded claims (lines 8-9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.charging.policy import charged_volume
from repro.core.messages import MessageError, ProofOfCharging, TlcCdr
from repro.core.plan import DataPlan
from repro.core.strategies import Role
from repro.crypto.keys import PublicKey
from repro.crypto.merkle import BatchSignature, verify_batch
from repro.crypto.signing import cached_verify


@dataclass(frozen=True)
class VerificationResult:
    """The verdict and, on failure, the violated check."""

    ok: bool
    reason: str = ""
    volume: float | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class PublicVerifier:
    """A third-party verification service with a replay cache."""

    def __init__(
        self,
        volume_tolerance: float = 1e-6,
        settlement_window: float | None = None,
    ) -> None:
        self.volume_tolerance = float(volume_tolerance)
        #: When set, a PoC presented more than this many seconds after
        #: its cycle end is rejected — the operator has already settled
        #: the cycle, and honouring late proofs would let a party replay
        #: negotiation outcomes against closed books.
        self.settlement_window = (
            None if settlement_window is None else float(settlement_window)
        )
        self._seen_nonce_pairs: set[tuple[bytes, bytes]] = set()
        self.verified_count = 0
        self.rejected_count = 0
        self.late_rejections = 0

    def verify(
        self,
        poc: ProofOfCharging | bytes,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        presented_at: float | None = None,
    ) -> VerificationResult:
        """Run Algorithm 2 on one PoC.

        ``presented_at`` is the reference time the proof reached the
        verifier; it only matters when a :attr:`settlement_window` is
        configured.
        """
        result = self._verify(poc, plan, edge_key, operator_key, presented_at)
        if result.ok:
            self.verified_count += 1
        else:
            self.rejected_count += 1
        return result

    def _verify(
        self,
        poc: ProofOfCharging | bytes,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        presented_at: float | None = None,
    ) -> VerificationResult:
        if isinstance(poc, bytes):
            try:
                poc = ProofOfCharging.from_bytes(poc)
            except (MessageError, ValueError) as exc:
                return VerificationResult(False, f"malformed PoC: {exc}")

        # (0) settlement deadline: a proof that shows up after the books
        # closed is not accepted, however internally consistent.
        if (
            self.settlement_window is not None
            and presented_at is not None
            and presented_at > poc.cycle_end + self.settlement_window
        ):
            self.late_rejections += 1
            return VerificationResult(
                False,
                "PoC presented after the verification deadline "
                f"(cycle end {poc.cycle_end} + window "
                f"{self.settlement_window} < {presented_at})",
            )

        constructor_key = (
            edge_key if poc.party is Role.EDGE else operator_key
        )
        accepter_key = (
            operator_key if poc.party is Role.EDGE else edge_key
        )

        # (1) signature layers: PoC outer, CDA by the other party, inner
        # CDR by the PoC constructor (it is the constructor's own CDR that
        # the peer's CDA embeds).  Signature checks go through the
        # memoized verifier: PoCs embedding already-seen CDR/CDA layers
        # (and re-verified proofs across campaign grid points) skip the
        # RSA public op entirely.
        if not cached_verify(
            constructor_key, poc.payload_bytes(), poc.signature
        ):
            return VerificationResult(False, "invalid PoC signature")
        cda = poc.cda
        if cda.party is poc.party:
            return VerificationResult(
                False, "CDA and PoC signed by the same party"
            )
        if not cached_verify(
            accepter_key, cda.payload_bytes(), cda.signature
        ):
            return VerificationResult(False, "invalid CDA signature")
        cdr = cda.peer_cdr
        if cdr.party is not poc.party:
            return VerificationResult(
                False, "inner CDR not from the PoC constructor"
            )
        if not cached_verify(
            constructor_key, cdr.payload_bytes(), cdr.signature
        ):
            return VerificationResult(False, "invalid inner CDR signature")

        # (2) plan consistency across layers and with the verifier's copy.
        layers = [
            (poc.cycle_start, poc.cycle_end, poc.c),
            (cda.cycle_start, cda.cycle_end, cda.c),
            (cdr.cycle_start, cdr.cycle_end, cdr.c),
        ]
        for start, end, c in layers:
            if (start, end) != plan.cycle.key() or abs(c - plan.c) > 1e-9:
                return VerificationResult(False, "inconsistent data plan")

        # (3) nonce coherence + replay defence + sequence agreement.
        edge_msg = cda if cda.party is Role.EDGE else cdr
        op_msg = cda if cda.party is Role.OPERATOR else cdr
        if poc.edge_nonce != edge_msg.nonce:
            return VerificationResult(False, "edge nonce mismatch")
        if poc.operator_nonce != op_msg.nonce:
            return VerificationResult(False, "operator nonce mismatch")
        # Sequence numbers are claim-round indices; legitimate protocol
        # paths pair claims from the same or adjacent rounds.  A larger
        # gap means a stale message was spliced into the proof.
        if abs(cda.sequence - cdr.sequence) > 1:
            return VerificationResult(
                False, "sequence numbers disagree (possible replay splice)"
            )
        pair = (poc.edge_nonce, poc.operator_nonce)
        if pair in self._seen_nonce_pairs:
            return VerificationResult(False, "replayed PoC")
        self._seen_nonce_pairs.add(pair)

        # (4) recompute line 8 from the embedded claims.
        expected = charged_volume(cdr.volume, cda.volume, plan.c)
        if abs(expected - poc.volume) > self.volume_tolerance * max(
            1.0, abs(expected)
        ):
            return VerificationResult(
                False,
                f"negotiated volume {poc.volume} does not match "
                f"recomputed {expected}",
            )
        return VerificationResult(True, volume=poc.volume)

    def verify_cdr_batch(
        self,
        cdrs: Sequence[TlcCdr],
        batch: BatchSignature,
        signer_key: PublicKey,
        plan: DataPlan,
    ) -> VerificationResult:
        """Verify a Merkle-batched stream of one party's CDR claims.

        The amortized variant of the layer-1 check: instead of N
        independent RSA verifications, the submitting party signed the
        Merkle root of its CDR payloads once
        (:func:`repro.core.protocol.sign_cdr_batch`), and this check
        costs one RSA public op plus N SHA-256 leaf recomputations.
        The per-CDR plan-consistency checks (Algorithm 2 lines 2-4)
        still run individually.
        """
        if not cdrs:
            return VerificationResult(False, "empty CDR batch")
        parties = {cdr.party for cdr in cdrs}
        if len(parties) != 1:
            return VerificationResult(
                False, "CDR batch mixes parties; one signer per batch"
            )
        payloads = [cdr.payload_bytes() for cdr in cdrs]
        if not verify_batch(signer_key, payloads, batch):
            return VerificationResult(False, "invalid batch signature")
        for cdr in cdrs:
            if (cdr.cycle_start, cdr.cycle_end) != plan.cycle.key() or abs(
                cdr.c - plan.c
            ) > 1e-9:
                return VerificationResult(
                    False, "inconsistent data plan in batched CDR"
                )
        self.verified_count += len(cdrs)
        return VerificationResult(True)
