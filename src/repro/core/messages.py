"""TLC wire messages: signed CDR, CDA, and Proof-of-Charging.

Wire sizes match the paper's Figure 17 table for RSA-1024:

========== =========
TLC CDR    199 bytes
TLC CDA    398 bytes
TLC PoC    796 bytes
========== =========

A TLC CDR is ``{T, c, s, n, x}`` signed by its sender; a CDA copies the
peer's CDR verbatim and signs it together with the sender's own claim; a
PoC carries the negotiated volume, the accepted CDA, and both nonces,
signed by the accepting party — so the finished PoC transitively carries
both parties' signatures and is "unforgeable, undeniable" (§5.3.2).

The PoC payload is padded to the prototype's 796-byte on-wire size; the
paper itself notes most PoC bytes are RSA padding "and thus compressable".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.core.strategies import Role
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.signing import sign, verify

MAGIC = b"TL"
VERSION = 1
NONCE_LEN = 16
APP_ID_LEN = 12
SIGNATURE_LEN = 128  # RSA-1024

MSG_CDR = 1
MSG_CDA = 2
MSG_POC = 3

CDR_WIRE_SIZE = 199
CDA_WIRE_SIZE = 398
POC_WIRE_SIZE = 796

# header: magic(2) version(1) type(1) party(1) reserved(2)
_HEADER = struct.Struct(">2sBBB2s")
# claim body: T_start(8) T_end(8) c(8) seq(4) volume(8)
_CLAIM_BODY = struct.Struct(">dddId")
# poc body: T_start(8) T_end(8) c(8) volume(8)
_POC_BODY = struct.Struct(">dddd")


class MessageError(ValueError):
    """Raised on malformed or mis-sized TLC messages."""


def _pack_app_id(app_id: str) -> bytes:
    encoded = app_id.encode("ascii")
    if len(encoded) > APP_ID_LEN:
        raise MessageError(f"app id too long (> {APP_ID_LEN}): {app_id!r}")
    return encoded.ljust(APP_ID_LEN, b"\x00")


def _unpack_app_id(data: bytes) -> str:
    return data.rstrip(b"\x00").decode("ascii")


def _header(msg_type: int, party: Role) -> bytes:
    party_code = 0 if party is Role.EDGE else 1
    return _HEADER.pack(MAGIC, VERSION, msg_type, party_code, b"\x00\x00")


def _parse_header(data: bytes, expected_type: int) -> Role:
    magic, version, msg_type, party_code, reserved = _HEADER.unpack(
        data[: _HEADER.size]
    )
    if magic != MAGIC:
        raise MessageError(f"bad magic: {magic!r}")
    if reserved != b"\x00\x00":
        # Reserved bytes are regenerated as zero when the signature
        # payload is recomputed; accepting nonzero values here would
        # make them a malleable, unsigned channel.
        raise MessageError(f"nonzero reserved bytes: {reserved!r}")
    if version != VERSION:
        raise MessageError(f"unsupported version: {version}")
    if msg_type != expected_type:
        raise MessageError(
            f"wrong message type: got {msg_type}, want {expected_type}"
        )
    if party_code not in (0, 1):
        raise MessageError(f"bad party code: {party_code}")
    return Role.EDGE if party_code == 0 else Role.OPERATOR


@dataclass(frozen=True)
class TlcCdr:
    """A signed charging-data-record claim: ``{T, c, s, n, x}_K-``."""

    party: Role
    app_id: str
    cycle_start: float
    cycle_end: float
    c: float
    sequence: int
    nonce: bytes
    volume: float
    signature: bytes = b""

    def payload_bytes(self) -> bytes:
        """The byte string the signature covers."""
        if len(self.nonce) != NONCE_LEN:
            raise MessageError(f"nonce must be {NONCE_LEN} bytes")
        return (
            _header(MSG_CDR, self.party)
            + _pack_app_id(self.app_id)
            + _CLAIM_BODY.pack(
                self.cycle_start,
                self.cycle_end,
                self.c,
                self.sequence,
                self.volume,
            )
            + self.nonce
        )

    def signed(self, key: PrivateKey) -> "TlcCdr":
        """A copy carrying a fresh signature by ``key``."""
        return replace(self, signature=sign(key, self.payload_bytes()))

    def verify_signature(self, key: PublicKey) -> bool:
        """Check the signature against the sender's public key."""
        return verify(key, self.payload_bytes(), self.signature)

    def to_bytes(self) -> bytes:
        """Serialize; always :data:`CDR_WIRE_SIZE` bytes."""
        if len(self.signature) != SIGNATURE_LEN:
            raise MessageError(
                f"CDR must be signed with RSA-1024 before serialization "
                f"(signature is {len(self.signature)} bytes)"
            )
        wire = self.payload_bytes() + self.signature
        if len(wire) != CDR_WIRE_SIZE:
            raise MessageError(
                f"CDR wire size {len(wire)} != {CDR_WIRE_SIZE}"
            )
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "TlcCdr":
        """Parse a serialized CDR."""
        if len(data) != CDR_WIRE_SIZE:
            raise MessageError(f"CDR must be {CDR_WIRE_SIZE} bytes")
        party = _parse_header(data, MSG_CDR)
        offset = _HEADER.size
        app_id = _unpack_app_id(data[offset : offset + APP_ID_LEN])
        offset += APP_ID_LEN
        start, end, c, seq, volume = _CLAIM_BODY.unpack(
            data[offset : offset + _CLAIM_BODY.size]
        )
        offset += _CLAIM_BODY.size
        nonce = data[offset : offset + NONCE_LEN]
        offset += NONCE_LEN
        signature = data[offset:]
        return cls(
            party=party,
            app_id=app_id,
            cycle_start=start,
            cycle_end=end,
            c=c,
            sequence=seq,
            nonce=nonce,
            volume=volume,
            signature=signature,
        )


@dataclass(frozen=True)
class TlcCda:
    """Charging Data Acceptance: the sender's claim plus the peer's CDR."""

    party: Role
    app_id: str
    cycle_start: float
    cycle_end: float
    c: float
    sequence: int
    nonce: bytes
    volume: float
    peer_cdr: TlcCdr
    signature: bytes = b""

    def payload_bytes(self) -> bytes:
        """The byte string the signature covers (peer CDR embedded)."""
        if len(self.nonce) != NONCE_LEN:
            raise MessageError(f"nonce must be {NONCE_LEN} bytes")
        return (
            _header(MSG_CDA, self.party)
            + _pack_app_id(self.app_id)
            + _CLAIM_BODY.pack(
                self.cycle_start,
                self.cycle_end,
                self.c,
                self.sequence,
                self.volume,
            )
            + self.nonce
            + self.peer_cdr.to_bytes()
        )

    def signed(self, key: PrivateKey) -> "TlcCda":
        """A copy carrying a fresh signature by ``key``."""
        return replace(self, signature=sign(key, self.payload_bytes()))

    def verify_signature(self, key: PublicKey) -> bool:
        """Check the outer signature (sender's key)."""
        return verify(key, self.payload_bytes(), self.signature)

    def to_bytes(self) -> bytes:
        """Serialize; always :data:`CDA_WIRE_SIZE` bytes."""
        if len(self.signature) != SIGNATURE_LEN:
            raise MessageError("CDA must be signed before serialization")
        wire = self.payload_bytes() + self.signature
        if len(wire) != CDA_WIRE_SIZE:
            raise MessageError(
                f"CDA wire size {len(wire)} != {CDA_WIRE_SIZE}"
            )
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "TlcCda":
        """Parse a serialized CDA."""
        if len(data) != CDA_WIRE_SIZE:
            raise MessageError(f"CDA must be {CDA_WIRE_SIZE} bytes")
        party = _parse_header(data, MSG_CDA)
        offset = _HEADER.size
        app_id = _unpack_app_id(data[offset : offset + APP_ID_LEN])
        offset += APP_ID_LEN
        start, end, c, seq, volume = _CLAIM_BODY.unpack(
            data[offset : offset + _CLAIM_BODY.size]
        )
        offset += _CLAIM_BODY.size
        nonce = data[offset : offset + NONCE_LEN]
        offset += NONCE_LEN
        peer_cdr = TlcCdr.from_bytes(data[offset : offset + CDR_WIRE_SIZE])
        offset += CDR_WIRE_SIZE
        signature = data[offset:]
        return cls(
            party=party,
            app_id=app_id,
            cycle_start=start,
            cycle_end=end,
            c=c,
            sequence=seq,
            nonce=nonce,
            volume=volume,
            peer_cdr=peer_cdr,
            signature=signature,
        )


@dataclass(frozen=True)
class ProofOfCharging:
    """The doubly-signed negotiation receipt (§5.3.2)."""

    party: Role  # the party that constructed (and signed) the PoC
    cycle_start: float
    cycle_end: float
    c: float
    volume: float
    cda: TlcCda
    edge_nonce: bytes
    operator_nonce: bytes
    signature: bytes = b""

    def payload_bytes(self) -> bytes:
        """The byte string the outer signature covers."""
        if (
            len(self.edge_nonce) != NONCE_LEN
            or len(self.operator_nonce) != NONCE_LEN
        ):
            raise MessageError(f"nonces must be {NONCE_LEN} bytes")
        return (
            _header(MSG_POC, self.party)
            + _POC_BODY.pack(
                self.cycle_start, self.cycle_end, self.c, self.volume
            )
            + self.cda.to_bytes()
            + self.edge_nonce
            + self.operator_nonce
        )

    def signed(self, key: PrivateKey) -> "ProofOfCharging":
        """A copy carrying a fresh signature by ``key``."""
        return replace(self, signature=sign(key, self.payload_bytes()))

    def verify_signature(self, key: PublicKey) -> bool:
        """Check the outer signature (the constructor's key)."""
        return verify(key, self.payload_bytes(), self.signature)

    def to_bytes(self) -> bytes:
        """Serialize; always :data:`POC_WIRE_SIZE` bytes (zero-padded,
        mirroring the prototype's compressible RSA padding)."""
        if len(self.signature) != SIGNATURE_LEN:
            raise MessageError("PoC must be signed before serialization")
        wire = self.payload_bytes() + self.signature
        if len(wire) > POC_WIRE_SIZE:
            raise MessageError(
                f"PoC wire size {len(wire)} > {POC_WIRE_SIZE}"
            )
        return wire + b"\x00" * (POC_WIRE_SIZE - len(wire))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProofOfCharging":
        """Parse a serialized PoC (padding stripped)."""
        if len(data) != POC_WIRE_SIZE:
            raise MessageError(f"PoC must be {POC_WIRE_SIZE} bytes")
        party = _parse_header(data, MSG_POC)
        offset = _HEADER.size
        start, end, c, volume = _POC_BODY.unpack(
            data[offset : offset + _POC_BODY.size]
        )
        offset += _POC_BODY.size
        cda = TlcCda.from_bytes(data[offset : offset + CDA_WIRE_SIZE])
        offset += CDA_WIRE_SIZE
        edge_nonce = data[offset : offset + NONCE_LEN]
        offset += NONCE_LEN
        operator_nonce = data[offset : offset + NONCE_LEN]
        offset += NONCE_LEN
        signature = data[offset : offset + SIGNATURE_LEN]
        return cls(
            party=party,
            cycle_start=start,
            cycle_end=end,
            c=c,
            volume=volume,
            cda=cda,
            edge_nonce=edge_nonce,
            operator_nonce=operator_nonce,
            signature=signature,
        )
