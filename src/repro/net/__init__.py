"""Network substrate: packets, links, wireless channel, congestion, transports.

The charging gap exists because packets are *counted* at one point (the
gateway, the sender's socket) and *dropped* at another (the air interface,
a congested queue, a middlebox).  This package provides exactly those
elements:

- :mod:`repro.net.packet` — the packet record all substrates pass around,
- :mod:`repro.net.link` — fixed-delay, optionally lossy point-to-point links,
- :mod:`repro.net.channel` — the wireless access channel with an RSS-driven
  loss model and Gilbert–Elliott-style intermittent disconnectivity bursts,
- :mod:`repro.net.congestion` — a backhaul queue whose drop rate grows with
  background offered load (the iperf knob from Figures 3 and 13),
- :mod:`repro.net.transport` — UDP-like (fire and forget) and TCP-like
  (retransmitting) senders, because the paper contrasts the loss exposure
  of real-time UDP apps with recovering TCP apps.
"""

from repro.net.channel import ChannelConfig, WirelessChannel
from repro.net.congestion import CongestedQueue, CongestionConfig
from repro.net.link import Link
from repro.net.packet import Direction, Packet

__all__ = [
    "ChannelConfig",
    "WirelessChannel",
    "CongestedQueue",
    "CongestionConfig",
    "Link",
    "Direction",
    "Packet",
]
