"""Transport abstractions: pipelines, UDP-like and TCP-like senders.

The paper's edge workloads are UDP-based real-time protocols (RTSP, GVSP,
game UDP), which never recover lost bytes — that is why their charging gap
is large.  Traditional apps use TCP, which retransmits and can also
*over*-charge through spurious retransmissions (§3.1, cause 4).  Both
sender types are provided so experiments can contrast them.

A :class:`Pipeline` chains network elements (gateway counter, congested
queue, wireless channel, ...) into a unidirectional path; each element
exposes ``send(packet) -> bool`` and ``connect(receiver)``.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

Deliver = Callable[[Packet], None]


class NetworkElement(Protocol):
    """Anything that can forward packets along a path."""

    def send(self, packet: Packet) -> bool: ...  # noqa: E704

    def connect(self, receiver: Deliver) -> None: ...  # noqa: E704


class Pipeline:
    """A unidirectional chain of network elements ending in receivers."""

    def __init__(self, elements: list[NetworkElement]) -> None:
        self.elements = list(elements)
        for upstream, downstream in zip(self.elements, self.elements[1:]):
            upstream.connect(downstream.send)
        self._receivers: list[Deliver] = []
        if self.elements:
            self.elements[-1].connect(self._fanout)

    def _fanout(self, packet: Packet) -> None:
        for receiver in self._receivers:
            receiver(packet)

    def connect(self, receiver: Deliver) -> None:
        """Attach a terminal receiver after the last element."""
        self._receivers.append(receiver)

    def send(self, packet: Packet) -> bool:
        """Inject a packet at the head of the pipeline."""
        if not self.elements:
            self._fanout(packet)
            return True
        return self.elements[0].send(packet)


class UdpSender:
    """Fire-and-forget sender: what RTSP/GVSP/game traffic uses."""

    def __init__(
        self,
        loop: EventLoop,
        path: Pipeline,
        flow: str,
        direction: Direction,
        qci: int = 9,
    ) -> None:
        self.loop = loop
        self.path = path
        self.flow = flow
        self.direction = direction
        self.qci = qci
        self._seq = 0
        self.sent_packets = 0
        self.sent_bytes = 0

    def send(self, size: int) -> Packet:
        """Send ``size`` application bytes; returns the packet object."""
        packet = Packet(
            size=size,
            flow=self.flow,
            direction=self.direction,
            qci=self.qci,
            created_at=self.loop.now,
            seq=self._seq,
        )
        self._seq += 1
        self.sent_packets += 1
        self.sent_bytes += packet.size
        self.path.send(packet)
        return packet


ACK_SIZE = 40  # bytes of a TCP pure-ACK segment on the wire


class TcpLikeSender:
    """A retransmitting sender with a per-packet retransmission timer.

    Models the §3.1 transport-layer effects: lost packets are re-sent
    (recovering the app's bytes but inflating the operator's count), and a
    delayed ACK can trigger a *spurious* retransmission that is charged
    although the original arrived.
    """

    def __init__(
        self,
        loop: EventLoop,
        path: Pipeline,
        ack_path: Pipeline,
        flow: str,
        direction: Direction,
        qci: int = 9,
        rto: float = 0.200,
        max_retries: int = 5,
    ) -> None:
        self.loop = loop
        self.path = path
        self.flow = flow
        self.direction = direction
        self.qci = qci
        self.rto = float(rto)
        self.max_retries = int(max_retries)
        self._seq = 0
        self._unacked: dict[int, Packet] = {}
        self._retries: dict[int, int] = {}
        self._timers: dict[int, object] = {}
        self.sent_packets = 0
        self.sent_bytes = 0
        self.retransmitted_packets = 0
        self.retransmitted_bytes = 0
        self.spurious_retransmissions = 0
        self.abandoned_packets = 0
        ack_path.connect(self._on_ack)

    def send(self, size: int) -> Packet:
        """Send ``size`` bytes reliably; returns the original packet."""
        packet = Packet(
            size=size,
            flow=self.flow,
            direction=self.direction,
            qci=self.qci,
            created_at=self.loop.now,
            seq=self._seq,
        )
        self._seq += 1
        self._transmit(packet, first=True)
        return packet

    def _transmit(self, packet: Packet, first: bool) -> None:
        self.sent_packets += 1
        self.sent_bytes += packet.size
        if not first:
            self.retransmitted_packets += 1
            self.retransmitted_bytes += packet.size
        self._unacked[packet.seq] = packet
        self.path.send(packet)
        timer = self.loop.schedule_in(
            self.rto,
            lambda seq=packet.seq: self._on_timeout(seq),
            label=f"{self.flow}-rto",
        )
        self._timers[packet.seq] = timer

    def _on_timeout(self, seq: int) -> None:
        if seq not in self._unacked:
            return
        retries = self._retries.get(seq, 0)
        if retries >= self.max_retries:
            self._unacked.pop(seq, None)
            self._retries.pop(seq, None)
            self.abandoned_packets += 1
            return
        self._retries[seq] = retries + 1
        packet = self._unacked[seq]
        self._transmit(packet.copy_for_retransmission(), first=False)

    def _on_ack(self, ack: Packet) -> None:
        seq = ack.seq
        if seq in self._unacked:
            self._unacked.pop(seq)
            self._retries.pop(seq, None)
            timer = self._timers.pop(seq, None)
            if timer is not None:
                timer.cancel()
        else:
            # ACK for a segment already retransmitted: the retransmission
            # was spurious (duplicate data charged by the network).
            self.spurious_retransmissions += 1


class AckingReceiver:
    """Terminal receiver that acknowledges every data packet (for TCP)."""

    def __init__(
        self,
        loop: EventLoop,
        ack_path: Pipeline,
        on_data: Deliver | None = None,
    ) -> None:
        self.loop = loop
        self.ack_path = ack_path
        self.on_data = on_data
        self._seen: set[int] = set()
        self.received_packets = 0
        self.received_bytes = 0
        self.duplicate_packets = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data packet: deliver once, always ACK."""
        if packet.seq in self._seen:
            self.duplicate_packets += 1
        else:
            self._seen.add(packet.seq)
            self.received_packets += 1
            self.received_bytes += packet.size
            if self.on_data is not None:
                self.on_data(packet)
        ack_direction = (
            Direction.UPLINK
            if packet.direction is Direction.DOWNLINK
            else Direction.DOWNLINK
        )
        ack = Packet(
            size=ACK_SIZE,
            flow=f"{packet.flow}-ack",
            direction=ack_direction,
            qci=packet.qci,
            created_at=self.loop.now,
            seq=packet.seq,
        )
        self.ack_path.send(ack)
