"""The wireless access channel between the base station and the device.

Two loss processes from §3.1 of the paper live here:

- *PHY intermittent connectivity*: the channel alternates between connected
  and disconnected states with exponentially distributed durations
  (a Gilbert–Elliott on/off model).  While disconnected, a small link-layer
  buffer holds packets (the paper observes buffering partially recovers the
  gap, Figure 4 at t=240s); overflow is lost over the air.
- *RSS-driven random loss*: weaker received signal strength means a higher
  residual per-packet loss probability even while "connected".

The channel also exposes its connectivity state and outage durations so
the LTE layer can emulate radio-link-failure detach: the paper's core
detaches a device after ~5 s of continuous outage, bounding the gap.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.net.block import PacketBlock
from repro.net.interval import IntervalFlow
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop
from repro.sim.sampling import DEFAULT_BLOCK_SIZE, ChunkedRandom

Deliver = Callable[[Packet], None]
DeliverBlock = Callable[[PacketBlock], None]
StateListener = Callable[[bool], None]


@dataclass
class ChannelConfig:
    """Tunable parameters of the wireless channel.

    Attributes
    ----------
    rss_dbm:
        Received signal strength; the paper sweeps [-95, -120] dBm.
    delay:
        One-way air-interface latency in seconds (LTE radio ~10 ms).
    mean_outage:
        Mean duration of a disconnectivity burst (s); paper measures 1.93 s.
    mean_uptime:
        Mean duration of connected periods (s).  ``float('inf')`` disables
        intermittency entirely.
    buffer_packets:
        Link-layer buffer capacity used to ride out outages.
    base_loss_rate:
        Residual loss at excellent signal (>= -85 dBm).
    """

    rss_dbm: float = -90.0
    delay: float = 0.010
    mean_outage: float = 1.93
    mean_uptime: float = float("inf")
    buffer_packets: int = 64
    base_loss_rate: float = 0.001

    @property
    def disconnectivity_ratio(self) -> float:
        """Long-run fraction of time spent disconnected (η in Figure 14)."""
        if math.isinf(self.mean_uptime):
            return 0.0
        return self.mean_outage / (self.mean_outage + self.mean_uptime)

    @classmethod
    def for_disconnectivity_ratio(
        cls, eta: float, mean_outage: float = 1.93, **kwargs: object
    ) -> "ChannelConfig":
        """Build a config with a target disconnectivity ratio η in [0, 1)."""
        if not 0.0 <= eta < 1.0:
            raise ValueError(f"disconnectivity ratio out of [0,1): {eta}")
        if eta == 0.0:
            return cls(mean_outage=mean_outage, mean_uptime=float("inf"), **kwargs)
        mean_uptime = mean_outage * (1.0 - eta) / eta
        return cls(mean_outage=mean_outage, mean_uptime=mean_uptime, **kwargs)


def rss_loss_rate(rss_dbm: float, base_loss_rate: float = 0.001) -> float:
    """Residual per-packet loss probability as a function of RSS.

    A logistic curve anchored so that loss is ~``base_loss_rate`` at
    -85 dBm and climbs steeply below about -110 dBm, matching the paper's
    qualitative observation that gaps stay small above -95 dBm and grow in
    the [-95, -120] sweep.
    """
    midpoint = -112.0   # dBm at which loss reaches ~50%
    steepness = 0.35    # per-dB growth
    logistic = 1.0 / (1.0 + math.exp(-steepness * (midpoint - rss_dbm)))
    return min(1.0, base_loss_rate + logistic)


class WirelessChannel:
    """A bidirectional air interface with intermittency and RSS loss."""

    def __init__(
        self,
        loop: EventLoop,
        config: ChannelConfig,
        rng: random.Random,
        name: str = "air",
        chunk_block: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.loop = loop
        self.config = config
        # The channel owns its named stream exclusively, so loss and
        # outage draws can be served from prefetched blocks without
        # changing the draw sequence (see repro.sim.sampling).
        self.rng = ChunkedRandom(rng, chunk_block)
        self.name = name
        # The air delay is fixed per run; cache it off the config chain.
        self._delay = float(config.delay)
        # The per-packet residual loss rate is a pure function of the
        # immutable radio config; computing the logistic once instead of
        # per packet keeps math.exp off the hot path.
        self._loss_rate = rss_loss_rate(
            config.rss_dbm, config.base_loss_rate
        )
        # Bound once: the block path pays these lookups per frame.
        self._random_block = self.rng.random_block
        self._call_in = loop.call_in
        self.connected = True
        self._receivers: list[Deliver] = []
        self._block_receivers: list[DeliverBlock] = []
        self._state_listeners: list[StateListener] = []
        # The outage buffer holds Packets and/or PacketBlocks; capacity
        # is in *packets*, so a separate count tracks block contents.
        self._buffer: deque[Packet | PacketBlock] = deque()
        self._buffered_packets = 0
        # Analytic mode parks outage traffic as one aggregate instead
        # (same packet capacity, shared with ``_buffered_packets``).
        self._interval_buffer: IntervalFlow | None = None
        self._outage_started_at: float | None = None
        self._telemetry = tel = telemetry.current()
        # Bound per-direction counter handles, keyed by the Direction
        # member itself so the hot path never touches ``.value``.  In
        # burst-aggregation mode the ``_agg_*`` accumulators shadow them
        # and drain into the same handles on session flush.
        self._m_outages = None
        self._m_in = self._m_out = None
        self._m_drop_overflow = self._m_drop_rss = None
        self._agg_in = self._agg_out = None
        self._agg_drop_overflow = self._agg_drop_rss = None
        if tel is not None:
            self._m_outages = tel.bind_counter("outages", layer=name)
            self._m_in = {
                d: tel.bind_counter("bytes_in", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_out = {
                d: tel.bind_counter("bytes_out", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_drop_overflow = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="buffer_overflow",
                )
                for d in Direction
            }
            self._m_drop_rss = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="rss_loss",
                )
                for d in Direction
            }
            if tel.burst_aggregation:
                self._agg_in = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_in.items()
                }
                self._agg_out = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_out.items()
                }
                self._agg_drop_overflow = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_drop_overflow.items()
                }
                self._agg_drop_rss = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_drop_rss.items()
                }
                accumulators = (
                    *self._agg_in.values(),
                    *self._agg_out.values(),
                    *self._agg_drop_overflow.values(),
                    *self._agg_drop_rss.values(),
                )
                tel.on_flush(
                    lambda: telemetry.flush_all(accumulators)
                )

        self.sent_packets = 0
        self.sent_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.total_outage_time = 0.0

        if not math.isinf(config.mean_uptime):
            self._schedule_disconnect()

    # ------------------------------------------------------------------
    # wiring

    def connect(self, receiver: Deliver) -> None:
        """Attach the receiving endpoint (device or base station side)."""
        self._receivers.append(receiver)

    def connect_block(self, receiver: DeliverBlock) -> None:
        """Attach a block-granular receiver (the fluid fast path).

        Without one, delivered blocks fall back to per-packet calls on
        the scalar receivers.
        """
        self._block_receivers.append(receiver)

    def on_state_change(self, listener: StateListener) -> None:
        """Subscribe to connectivity transitions (True = connected)."""
        self._state_listeners.append(listener)

    # ------------------------------------------------------------------
    # state machine

    def _schedule_disconnect(self) -> None:
        uptime = self.rng.expovariate(1.0 / self.config.mean_uptime)
        self.loop.schedule_in(uptime, self._go_down, label=f"{self.name}-down")

    def _schedule_reconnect(self) -> None:
        outage = self.rng.expovariate(1.0 / self.config.mean_outage)
        self.loop.schedule_in(outage, self._go_up, label=f"{self.name}-up")

    def _go_down(self, schedule_reconnect: bool = True) -> None:
        if not self.connected:
            return
        self.connected = False
        self._outage_started_at = self.loop.now
        tel = self._telemetry
        if tel is not None:
            self._m_outages.inc()
            tel.event(
                "air", "outage_start", buffered=self._buffered_packets
            )
        for listener in self._state_listeners:
            listener(False)
        if schedule_reconnect:
            self._schedule_reconnect()

    def _go_up(self) -> None:
        if self.connected:
            return
        self.connected = True
        outage_duration = 0.0
        if self._outage_started_at is not None:
            outage_duration = self.loop.now - self._outage_started_at
            self.total_outage_time += outage_duration
            self._outage_started_at = None
        tel = self._telemetry
        if tel is not None:
            tel.event(
                "air",
                "outage_end",
                duration=outage_duration,
                flushing=self._buffered_packets,
            )
        for listener in self._state_listeners:
            listener(True)
        self._flush_buffer()
        if not math.isinf(self.config.mean_uptime):
            self._schedule_disconnect()

    def interrupt(self, duration: float) -> None:
        """Force a fixed-length service interruption (handover break).

        Link-layer mobility (§3.1 cause 2) interrupts the user plane for
        tens of milliseconds per handover; packets beyond the buffer are
        lost exactly as in a natural outage.
        """
        if duration <= 0:
            raise ValueError(f"interruption must be positive: {duration}")
        if not self.connected:
            return  # already down; the outage in progress covers it
        self._go_down(schedule_reconnect=False)
        self.loop.schedule_in(duration, self._go_up, label=f"{self.name}-ho")

    def current_outage_duration(self) -> float:
        """Seconds the channel has currently been down (0 if connected)."""
        if self.connected or self._outage_started_at is None:
            return 0.0
        return self.loop.now - self._outage_started_at

    # ------------------------------------------------------------------
    # data path

    def send(self, packet: Packet) -> bool:
        """Transmit a packet over the air.

        Returns True if the packet was delivered or buffered, False if it
        was lost (over-the-air loss or buffer overflow during an outage).
        """
        self.sent_packets += 1
        self.sent_bytes += packet.size
        agg = self._agg_in
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_in is not None:
            self._m_in[packet.direction].inc(packet.size)

        if not self.connected:
            if self._buffered_packets < self.config.buffer_packets:
                self._buffer.append(packet)
                self._buffered_packets += 1
                return True
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            agg = self._agg_drop_overflow
            if agg is not None:
                acc = agg[packet.direction]
                acc.bytes += packet.size
                acc.packets += 1
            elif self._m_drop_overflow is not None:
                self._m_drop_overflow[packet.direction].inc(packet.size)
            return False

        if self.rng.random() < self._loss_rate:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            agg = self._agg_drop_rss
            if agg is not None:
                acc = agg[packet.direction]
                acc.bytes += packet.size
                acc.packets += 1
            elif self._m_drop_rss is not None:
                self._m_drop_rss[packet.direction].inc(packet.size)
            return False

        self._schedule_delivery(packet)
        return True

    def send_block(self, block: PacketBlock) -> int:
        """Transmit a whole frame's packets in one call (fluid mode).

        Returns how many of the block's packets were delivered or
        buffered.  The RNG consumption is identical to ``count``
        sequential :meth:`send` calls — all packets of a frame are
        emitted in one simulated instant in packet mode too, so drawing
        the block's uniforms at once preserves the stream's draw order
        exactly (outage ``expovariate`` draws on the same stream cannot
        interleave mid-frame).
        """
        n = block.count
        size = block.size
        self.sent_packets += n
        self.sent_bytes += size
        agg = self._agg_in
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += size
            acc.packets += n
        elif self._m_in is not None:
            self._m_in[block.direction].inc(size)

        if not self.connected:
            # Same admission rule as the scalar path: packets fit the
            # buffer up to capacity, the tail overflows — no loss draws
            # are consumed while disconnected.
            space = self.config.buffer_packets - self._buffered_packets
            kept, overflow = block.split(min(space, n))
            if kept is not None:
                self._buffer.append(kept)
                self._buffered_packets += kept.count
            if overflow is not None:
                self.dropped_packets += overflow.count
                self.dropped_bytes += overflow.size
                agg = self._agg_drop_overflow
                if agg is not None:
                    acc = agg[overflow.direction]
                    acc.bytes += overflow.size
                    acc.packets += overflow.count
                elif self._m_drop_overflow is not None:
                    self._m_drop_overflow[overflow.direction].inc(
                        overflow.size
                    )
            return kept.count if kept is not None else 0

        draws = self._random_block(n)
        # min() short-circuits the common all-survive frame with one
        # reduce; the mask is only materialized when something dropped.
        if n and draws.min() < self._loss_rate:
            survivors = block.sizes[draws >= self._loss_rate]
            kept = int(survivors.size)
            if kept:
                kept_bytes = int(survivors.sum())
            else:
                survivors = None
                kept_bytes = 0
            lost = n - kept
            lost_bytes = size - kept_bytes
            self.dropped_packets += lost
            self.dropped_bytes += lost_bytes
            agg = self._agg_drop_rss
            if agg is not None:
                acc = agg[block.direction]
                acc.bytes += lost_bytes
                acc.packets += lost
            elif self._m_drop_rss is not None:
                self._m_drop_rss[block.direction].inc(lost_bytes)
            if survivors is None:
                return 0
            block = block._with_sizes(
                survivors, block.seq_start, kept_bytes, kept
            )

        self._call_in(self._delay, self._deliver_block, block)
        return block.count

    def expected_loss(self, flow: IntervalFlow) -> float:
        """Expected over-the-air packet losses of one stable interval.

        The closed form analytic advancement integerizes: while
        connected every packet faces the precomputed i.i.d. RSS loss
        rate; while disconnected losses are buffer overflow, which is
        capacity arithmetic (see :meth:`send_interval`), not a rate.
        """
        return flow.packets * self._loss_rate if self.connected else 0.0

    def send_interval(
        self, flow: IntervalFlow, connected: bool | None = None
    ) -> IntervalFlow:
        """Advance one stable interval's aggregate over the air.

        Returns the survivor aggregate (already counted as delivered —
        the caller routes it downstream).  Connected, the expected loss
        ``n × loss_rate`` is integerized against **one** uniform from
        the channel's own stream, consumed only when the rate and the
        aggregate are both nonzero (the analytic draw contract).
        Disconnected, packets fill the outage buffer up to capacity
        with no draws — the analytic mirror of the scalar/block
        admission rule — and the tail overflows; the parked aggregate
        leaves via :meth:`flush_interval_buffer` on reconnect.

        ``connected`` lets the driver pass the interval's *pre-
        transition* state from inside a state-change notification
        (listeners fire after ``connected`` has already flipped).
        """
        if flow.is_empty:
            return flow
        if connected is None:
            connected = self.connected
        n = flow.packets
        size = flow.bytes
        self.sent_packets += n
        self.sent_bytes += size
        if self._m_in is not None:
            self._m_in[flow.direction].inc(size)

        if not connected:
            space = self.config.buffer_packets - self._buffered_packets
            kept, overflow = flow.take(max(space, 0))
            if not kept.is_empty:
                buffer = self._interval_buffer
                self._interval_buffer = (
                    kept if buffer is None else buffer.merge(kept)
                )
                self._buffered_packets += kept.packets
            if not overflow.is_empty:
                self.dropped_packets += overflow.packets
                self.dropped_bytes += overflow.bytes
                if self._m_drop_overflow is not None:
                    self._m_drop_overflow[overflow.direction].inc(
                        overflow.bytes
                    )
            return IntervalFlow.empty(flow.flow, flow.direction, flow.qci)

        if self._loss_rate > 0.0:
            flow, lost, lost_bytes = flow.expected_drop(
                self._loss_rate, self.rng.random()
            )
            if lost:
                self.dropped_packets += lost
                self.dropped_bytes += lost_bytes
                if self._m_drop_rss is not None:
                    self._m_drop_rss[flow.direction].inc(lost_bytes)
            if flow.is_empty:
                return flow
        self.delivered_packets += flow.packets
        self.delivered_bytes += flow.bytes
        if self._m_out is not None:
            self._m_out[flow.direction].inc(flow.bytes)
        return flow

    def flush_interval_buffer(self) -> IntervalFlow | None:
        """Release the analytic outage buffer after a reconnect.

        The aggregate is counted as delivered (no loss draws — the
        scalar/block buffer flushes without redrawing too) and handed
        back for the driver to route downstream; ``None`` when nothing
        was parked.
        """
        flow = self._interval_buffer
        if flow is None:
            return None
        self._interval_buffer = None
        self._buffered_packets -= flow.packets
        self.delivered_packets += flow.packets
        self.delivered_bytes += flow.bytes
        if self._m_out is not None:
            self._m_out[flow.direction].inc(flow.bytes)
        return flow

    def _flush_buffer(self) -> None:
        while self._buffer:
            item = self._buffer.popleft()
            if isinstance(item, PacketBlock):
                self._buffered_packets -= item.count
                self.loop.call_in(self._delay, self._deliver_block, item)
            else:
                self._buffered_packets -= 1
                self._schedule_delivery(item)

    def _schedule_delivery(self, packet: Packet) -> None:
        # Fire-and-forget fast path: deliveries are never cancelled, so
        # skip the Event handle and the per-packet closure.
        self.loop.call_in(self._delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        agg = self._agg_out
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_out is not None:
            self._m_out[packet.direction].inc(packet.size)
        for receiver in self._receivers:
            receiver(packet)

    def _deliver_block(self, block: PacketBlock) -> None:
        self.delivered_packets += block.count
        self.delivered_bytes += block.size
        agg = self._agg_out
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += block.size
            acc.packets += block.count
        elif self._m_out is not None:
            self._m_out[block.direction].inc(block.size)
        receivers = self._block_receivers
        if receivers:
            for receiver in receivers:
                receiver(block)
        else:
            for packet in block.packets():
                for receiver in self._receivers:
                    receiver(packet)
