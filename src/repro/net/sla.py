"""SLA middlebox: application-layer drops for late real-time data.

§3.1, cause 5: "The operator's middle-box may drop the data frames from
real-time applications (e.g. video streaming) that exceed the latency
requirements or service-level agreements."  A late VR frame is useless,
so the middlebox sheds it — after the gateway already charged it.

The element measures each packet's age (now minus ``created_at``) on
arrival and drops anything older than the flow's delay budget.  By
default the budget comes from the bearer's QCI (TS 23.203); per-flow
overrides model app-specific SLAs.
"""

from __future__ import annotations

from typing import Callable

from repro import telemetry
from repro.lte.bearer import QCI_DELAY_BUDGET
from repro.net.block import PacketBlock
from repro.net.interval import IntervalFlow
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

Deliver = Callable[[Packet], None]
DeliverBlock = Callable[[PacketBlock], None]


class SlaMiddlebox:
    """Drops packets whose in-network age exceeds their delay budget."""

    def __init__(
        self,
        loop: EventLoop,
        default_budget: float | None = None,
        name: str = "sla",
    ) -> None:
        if default_budget is not None and default_budget <= 0:
            raise ValueError(
                f"delay budget must be positive: {default_budget}"
            )
        self.loop = loop
        self.default_budget = default_budget
        self.name = name
        self._flow_budgets: dict[str, float] = {}
        self._receivers: list[Deliver] = []
        self._block_receivers: list[DeliverBlock] = []
        self.passed_packets = 0
        self.passed_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self._telemetry = tel = telemetry.current()
        # Bound per-direction counter handles; pass-through bytes burst-
        # aggregate, while drops stay per-packet (each also emits a
        # structured ``sla_drop`` trace event).
        self._m_in = self._m_out = self._m_drop = None
        self._agg_in = self._agg_out = None
        if tel is not None:
            self._m_in = {
                d: tel.bind_counter("bytes_in", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_out = {
                d: tel.bind_counter("bytes_out", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_drop = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="sla_expired",
                )
                for d in Direction
            }
            if tel.burst_aggregation:
                self._agg_in = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_in.items()
                }
                self._agg_out = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_out.items()
                }
                accumulators = (
                    *self._agg_in.values(),
                    *self._agg_out.values(),
                )
                tel.on_flush(
                    lambda: telemetry.flush_all(accumulators)
                )

    def connect(self, receiver: Deliver) -> None:
        """Attach the downstream element."""
        self._receivers.append(receiver)

    def connect_block(self, receiver: DeliverBlock) -> None:
        """Attach a downstream element accepting whole packet blocks."""
        self._block_receivers.append(receiver)

    def set_flow_budget(self, flow: str, budget: float) -> None:
        """Install a per-flow SLA tighter/looser than the QCI default."""
        if budget <= 0:
            raise ValueError(f"delay budget must be positive: {budget}")
        self._flow_budgets[flow] = float(budget)

    def budget_for(self, packet: Packet) -> float:
        """The delay budget applying to this packet."""
        if packet.flow in self._flow_budgets:
            return self._flow_budgets[packet.flow]
        if self.default_budget is not None:
            return self.default_budget
        return QCI_DELAY_BUDGET.get(packet.qci, 0.300)

    def send(self, packet: Packet) -> bool:
        """Forward the packet unless it has aged past its budget."""
        agg = self._agg_in
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_in is not None:
            self._m_in[packet.direction].inc(packet.size)
        age = self.loop.now - packet.created_at
        if age > self.budget_for(packet):
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            if self._m_drop is not None:
                self._m_drop[packet.direction].inc(packet.size)
                self._telemetry.event(
                    self.name,
                    "sla_drop",
                    flow=packet.flow,
                    age=age,
                    budget=self.budget_for(packet),
                )
            return False
        self.passed_packets += 1
        self.passed_bytes += packet.size
        agg = self._agg_out
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_out is not None:
            self._m_out[packet.direction].inc(packet.size)
        for receiver in self._receivers:
            receiver(packet)
        return True

    def send_interval(self, flow: IntervalFlow, age: float) -> IntervalFlow:
        """Age-check an aggregate interval's traffic (analytic mode).

        In a stable interval the in-network age ahead of the middlebox
        is constant (core delay plus the bottleneck's fixed queueing
        delay), so the whole aggregate passes or expires together — the
        same all-or-nothing the fluid path applies per frame.  A drop
        emits ONE counter update and ONE trace event for the aggregate
        rather than per-packet records (documented divergence: byte and
        packet totals are identical, event counts are not).
        """
        if flow.is_empty:
            return flow
        if self._m_in is not None:
            self._m_in[flow.direction].inc(flow.bytes)
        budget = self._flow_budgets.get(flow.flow)
        if budget is None:
            budget = (
                self.default_budget
                if self.default_budget is not None
                else QCI_DELAY_BUDGET.get(flow.qci, 0.300)
            )
        if age > budget:
            self.dropped_packets += flow.packets
            self.dropped_bytes += flow.bytes
            if self._m_drop is not None:
                self._m_drop[flow.direction].inc(flow.bytes)
                self._telemetry.event(
                    self.name,
                    "sla_drop",
                    flow=flow.flow,
                    age=age,
                    budget=budget,
                    packets=flow.packets,
                )
            return IntervalFlow.empty(flow.flow, flow.direction, flow.qci)
        self.passed_packets += flow.packets
        self.passed_bytes += flow.bytes
        if self._m_out is not None:
            self._m_out[flow.direction].inc(flow.bytes)
        return flow

    def send_block(self, block: PacketBlock) -> int:
        """Age-check a whole frame at once (fluid mode).

        Every packet of a block shares ``created_at`` and arrives in the
        same simulated instant, so the age test is one comparison for
        the frame.  ``budget_for`` reads only flow/qci, which the block
        carries.  On a drop the scalar path emits one counter update and
        one trace event per packet, so the block path mirrors that
        exactly to keep telemetry records byte-identical across modes.
        """
        agg = self._agg_in
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += block.size
            acc.packets += block.count
        elif self._m_in is not None:
            self._m_in[block.direction].inc(block.size)
        age = self.loop.now - block.created_at
        budget = self.budget_for(block)
        if age > budget:
            self.dropped_packets += block.count
            self.dropped_bytes += block.size
            if self._m_drop is not None:
                handle = self._m_drop[block.direction]
                event = self._telemetry.event
                for size in block.sizes:
                    handle.inc(int(size))
                    event(
                        self.name,
                        "sla_drop",
                        flow=block.flow,
                        age=age,
                        budget=budget,
                    )
            return 0
        self.passed_packets += block.count
        self.passed_bytes += block.size
        agg = self._agg_out
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += block.size
            acc.packets += block.count
        elif self._m_out is not None:
            self._m_out[block.direction].inc(block.size)
        receivers = self._block_receivers
        if receivers:
            for receiver in receivers:
                receiver(block)
        else:
            for packet in block.packets():
                for receiver in self._receivers:
                    receiver(packet)
        return block.count
