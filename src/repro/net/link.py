"""Point-to-point links with delay and optional random loss.

Used for the wired segments of the testbed (edge server <-> LTE core over
1 Gbps Ethernet in the paper's Figure 11) where loss is negligible but
propagation/serialization delay still contributes to RTT.
"""

from __future__ import annotations

import random
from typing import Callable

from repro import telemetry
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop
from repro.sim.sampling import DEFAULT_BLOCK_SIZE, ChunkedRandom

Deliver = Callable[[Packet], None]


class Link:
    """A unidirectional link delivering packets after a fixed delay.

    Parameters
    ----------
    loop:
        The shared event loop.
    delay:
        One-way latency in seconds.
    loss_rate:
        Independent per-packet drop probability in [0, 1].
    bandwidth_bps:
        Optional serialization bandwidth; ``None`` means infinitely fast.
        When set, packets queue behind each other FIFO.
    rng:
        Randomness source for loss draws (required when ``loss_rate > 0``).
    """

    def __init__(
        self,
        loop: EventLoop,
        delay: float,
        loss_rate: float = 0.0,
        bandwidth_bps: float | None = None,
        rng: random.Random | None = None,
        name: str = "link",
        chunk_block: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative link delay: {delay}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate out of [0,1]: {loss_rate}")
        if loss_rate > 0 and rng is None:
            raise ValueError("lossy link needs an rng")
        self.loop = loop
        self.delay = float(delay)
        self.loss_rate = float(loss_rate)
        self.bandwidth_bps = bandwidth_bps
        # Loss draws are this stream's only consumer, so block-prefetched
        # uniforms preserve the exact per-packet draw sequence.
        self.rng = ChunkedRandom(rng, chunk_block) if rng is not None else None
        self.name = name
        self._receivers: list[Deliver] = []
        self._busy_until = 0.0
        self.sent_packets = 0
        self.sent_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self._telemetry = tel = telemetry.current()
        # Bound per-direction counter handles; burst accumulators fold
        # same-outcome byte runs into them on session flush.
        self._m_in = self._m_out = self._m_drop = None
        self._agg_in = self._agg_out = self._agg_drop = None
        if tel is not None:
            self._m_in = {
                d: tel.bind_counter("bytes_in", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_out = {
                d: tel.bind_counter("bytes_out", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_drop = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="link_loss",
                )
                for d in Direction
            }
            if tel.burst_aggregation:
                self._agg_in = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_in.items()
                }
                self._agg_out = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_out.items()
                }
                self._agg_drop = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_drop.items()
                }
                accumulators = (
                    *self._agg_in.values(),
                    *self._agg_out.values(),
                    *self._agg_drop.values(),
                )
                tel.on_flush(
                    lambda: telemetry.flush_all(accumulators)
                )

    def connect(self, receiver: Deliver) -> None:
        """Attach a delivery callback (multiple receivers all get a copy)."""
        self._receivers.append(receiver)

    def send(self, packet: Packet) -> bool:
        """Inject a packet; returns False if the loss draw dropped it."""
        self.sent_packets += 1
        self.sent_bytes += packet.size
        agg = self._agg_in
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_in is not None:
            self._m_in[packet.direction].inc(packet.size)
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            agg = self._agg_drop
            if agg is not None:
                acc = agg[packet.direction]
                acc.bytes += packet.size
                acc.packets += 1
            elif self._m_drop is not None:
                self._m_drop[packet.direction].inc(packet.size)
            return False

        depart = self.loop.now
        if self.bandwidth_bps:
            serialization = packet.size * 8 / self.bandwidth_bps
            start = max(depart, self._busy_until)
            self._busy_until = start + serialization
            depart = self._busy_until
        arrival = depart + self.delay
        # Fire-and-forget fast path: deliveries are never cancelled.
        self.loop.call_at(arrival, self._deliver, packet)
        return True

    def _deliver(self, packet: Packet) -> None:
        agg = self._agg_out
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_out is not None:
            self._m_out[packet.direction].inc(packet.size)
        for receiver in self._receivers:
            receiver(packet)
