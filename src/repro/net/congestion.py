"""Congestion model: a shared bottleneck queue loaded by background traffic.

Figures 3 and 13 sweep iperf UDP background traffic from 0 to 160 Mbps and
show the charging gap growing with load.  Structurally, the drops happen
*after* the gateway has already counted the bytes (§3.1, "IP-layer
congestion: packets can be dropped after being charged by the gateway"),
which is exactly where this queue sits in :mod:`repro.lte.network`.

The model is an M/M/1/K-flavoured abstraction: given the bottleneck
capacity and the background offered load, foreground packets see a drop
probability that rises smoothly as utilization approaches and passes 1.
QCI-aware scheduling gives high-priority bearers (the paper's QCI=7 gaming
traffic) a much smaller effective drop rate, reproducing Figure 12d's
near-zero gaming gap.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro import telemetry
from repro.net.block import PacketBlock
from repro.net.interval import IntervalFlow
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop
from repro.sim.sampling import DEFAULT_BLOCK_SIZE, ChunkedRandom

Deliver = Callable[[Packet], None]
DeliverBlock = Callable[[PacketBlock], None]

# Priority weight per QCI: fraction of congestion drops a bearer is exposed
# to, relative to best effort.  QCI 3/7 are the paper's gaming classes with
# 50 ms / 100 ms delay budgets; QCI 9 is default best effort.
QCI_DROP_EXPOSURE = {
    1: 0.02,
    2: 0.03,
    3: 0.04,
    4: 0.05,
    5: 0.02,
    6: 0.30,
    7: 0.06,
    8: 0.60,
    9: 1.00,
}


@dataclass
class CongestionConfig:
    """Bottleneck parameters.

    Attributes
    ----------
    capacity_bps:
        Bottleneck capacity; the paper's small cell runs a 20 MHz LTE
        carrier (~150 Mbps peak), so 160 Mbps background saturates it.
    background_bps:
        Offered background load (the iperf knob), bits per second.
    queue_delay:
        Added queueing delay at high utilization (seconds, at rho=1).
    drop_sharpness:
        How steeply drops ramp up near saturation.
    """

    capacity_bps: float = 150e6
    background_bps: float = 0.0
    queue_delay: float = 0.015
    drop_sharpness: float = 12.0

    @property
    def utilization(self) -> float:
        """Background offered load as a fraction of capacity."""
        return self.background_bps / self.capacity_bps


def congestion_drop_rate(config: CongestionConfig) -> float:
    """Baseline (QCI=9) drop probability for the given background load.

    A logistic ramp calibrated against the paper's Figure 3 sweep on a
    20 MHz LTE carrier (~150 Mbps): negligible below ~100 Mbps background,
    a few percent by 120 Mbps, and 20-30% once the 160 Mbps background
    saturates the cell.
    """
    rho = config.utilization
    if rho <= 0.0:
        return 0.0
    linear_floor = 0.002 * min(rho, 1.0)
    ramp = 0.28 / (1.0 + math.exp(-config.drop_sharpness * (rho - 0.95)))
    return min(1.0, linear_floor + ramp)


class CongestedQueue:
    """A bottleneck element dropping and delaying packets by load and QCI."""

    def __init__(
        self,
        loop: EventLoop,
        config: CongestionConfig,
        rng: random.Random,
        name: str = "bottleneck",
        chunk_block: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.loop = loop
        self.config = config
        # Drop draws are this stream's only consumer, so block-prefetched
        # uniforms preserve the exact per-packet draw sequence.
        self.rng = ChunkedRandom(rng, chunk_block)
        self.name = name
        self._receivers: list[Deliver] = []
        self._block_receivers: list[DeliverBlock] = []
        self.sent_packets = 0
        self.sent_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self._telemetry = tel = telemetry.current()
        # Bound per-direction counter handles (see WirelessChannel): in
        # burst-aggregation mode same-outcome byte runs accumulate in
        # plain integers and fold into the counters on session flush.
        self._m_in = self._m_out = self._m_drop = None
        self._agg_in = self._agg_out = self._agg_drop = None
        if tel is not None:
            self._m_in = {
                d: tel.bind_counter("bytes_in", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_out = {
                d: tel.bind_counter("bytes_out", layer=name, direction=d.value)
                for d in Direction
            }
            self._m_drop = {
                d: tel.bind_counter(
                    "bytes_dropped",
                    layer=name,
                    direction=d.value,
                    cause="congestion",
                )
                for d in Direction
            }
            if tel.burst_aggregation:
                self._agg_in = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_in.items()
                }
                self._agg_out = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_out.items()
                }
                self._agg_drop = {
                    d: telemetry.RunAccumulator(h)
                    for d, h in self._m_drop.items()
                }
                accumulators = (
                    *self._agg_in.values(),
                    *self._agg_out.values(),
                    *self._agg_drop.values(),
                )
                tel.on_flush(
                    lambda: telemetry.flush_all(accumulators)
                )
        # The bottleneck load is fixed for a run: precompute the baseline
        # drop probability, the per-QCI effective rates, and the queueing
        # delay instead of re-deriving the logistic per packet.
        self._base_drop_rate = congestion_drop_rate(config)
        self._drop_rate_by_qci: dict[int, float] = {
            qci: min(1.0, self._base_drop_rate * exposure)
            for qci, exposure in QCI_DROP_EXPOSURE.items()
        }
        rho = min(config.utilization, 0.99)
        delay = config.queue_delay * rho / (1.0 - rho + 1e-9)
        self._queue_delay = min(delay, 0.200)  # bounded by queue size/AQM
        # Bound once: the block path pays these lookups per frame.
        self._random_block = self.rng.random_block
        self._call_in = loop.call_in

    def connect(self, receiver: Deliver) -> None:
        """Attach the downstream element."""
        self._receivers.append(receiver)

    def connect_block(self, receiver: DeliverBlock) -> None:
        """Attach a downstream element accepting whole packet blocks."""
        self._block_receivers.append(receiver)

    def drop_rate_for(self, qci: int) -> float:
        """Effective drop probability for a bearer of the given QCI."""
        rate = self._drop_rate_by_qci.get(qci)
        if rate is None:
            rate = min(1.0, self._base_drop_rate * 1.0)
        return rate

    @property
    def queue_delay(self) -> float:
        """Queueing delay seen by surviving packets (constant per run)."""
        return self._queue_delay

    def expected_loss(self, flow: IntervalFlow) -> float:
        """E[packets dropped] for an aggregate crossing this bottleneck."""
        return flow.packets * self.drop_rate_for(flow.qci)

    def send_interval(self, flow: IntervalFlow) -> IntervalFlow:
        """Advance an aggregate through the bottleneck in one step.

        The load — and hence the per-QCI drop rate — is constant for a
        run, so a whole stable interval collapses to one binomial mean:
        losses are ``stochastic_round(n·rate)`` using a single uniform
        from this queue's own stream (drawn only when the rate is
        non-zero, mirroring the packet path's draw gating).  Survivors
        are counted out *synchronously*: the packet path delays egress
        accounting by ``queue_delay``, a divergence bounded by one
        interval's traffic and covered by the documented analytic
        tolerance.  Byte totals are unchanged.
        """
        if flow.is_empty:
            return flow
        self.sent_packets += flow.packets
        self.sent_bytes += flow.bytes
        if self._m_in is not None:
            self._m_in[flow.direction].inc(flow.bytes)
        rate = self._drop_rate_by_qci.get(flow.qci, self._base_drop_rate)
        if rate:
            survivors, lost, lost_bytes = flow.expected_drop(
                rate, self.rng.random()
            )
            if lost:
                self.dropped_packets += lost
                self.dropped_bytes += lost_bytes
                if self._m_drop is not None:
                    self._m_drop[flow.direction].inc(lost_bytes)
            flow = survivors
        if not flow.is_empty and self._m_out is not None:
            self._m_out[flow.direction].inc(flow.bytes)
        return flow

    def send(self, packet: Packet) -> bool:
        """Pass a packet through the bottleneck; False when dropped."""
        self.sent_packets += 1
        self.sent_bytes += packet.size
        agg = self._agg_in
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_in is not None:
            self._m_in[packet.direction].inc(packet.size)
        rate = self._drop_rate_by_qci.get(packet.qci, self._base_drop_rate)
        if rate and self.rng.random() < rate:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            agg = self._agg_drop
            if agg is not None:
                acc = agg[packet.direction]
                acc.bytes += packet.size
                acc.packets += 1
            elif self._m_drop is not None:
                self._m_drop[packet.direction].inc(packet.size)
            return False

        # Fire-and-forget fast path: queue egress is never cancelled.
        self.loop.call_in(self._queue_delay, self._deliver, packet)
        return True

    def send_block(self, block: PacketBlock) -> int:
        """Pass a whole frame through the bottleneck (fluid mode).

        Draw parity with the scalar path: one uniform per packet when
        the bearer's effective rate is non-zero, none at all otherwise
        — so the stream stays aligned with ``count`` scalar sends.
        """
        n = block.count
        size = block.size
        self.sent_packets += n
        self.sent_bytes += size
        agg = self._agg_in
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += size
            acc.packets += n
        elif self._m_in is not None:
            self._m_in[block.direction].inc(size)
        rate = self._drop_rate_by_qci.get(block.qci, self._base_drop_rate)
        if rate:
            draws = self._random_block(n)
            # min() short-circuits the all-survive frame with one
            # reduce; the mask is only built when something dropped.
            if n and draws.min() < rate:
                survivors = block.sizes[draws >= rate]
                kept = int(survivors.size)
                if kept:
                    kept_bytes = int(survivors.sum())
                else:
                    survivors = None
                    kept_bytes = 0
                dropped = n - kept
                dropped_bytes = size - kept_bytes
                self.dropped_packets += dropped
                self.dropped_bytes += dropped_bytes
                agg = self._agg_drop
                if agg is not None:
                    acc = agg[block.direction]
                    acc.bytes += dropped_bytes
                    acc.packets += dropped
                elif self._m_drop is not None:
                    self._m_drop[block.direction].inc(dropped_bytes)
                if survivors is None:
                    return 0
                block = block._with_sizes(
                    survivors, block.seq_start, kept_bytes, kept
                )
        self._call_in(self._queue_delay, self._deliver_block, block)
        return block.count

    def _deliver(self, packet: Packet) -> None:
        agg = self._agg_out
        if agg is not None:
            acc = agg[packet.direction]
            acc.bytes += packet.size
            acc.packets += 1
        elif self._m_out is not None:
            self._m_out[packet.direction].inc(packet.size)
        for receiver in self._receivers:
            receiver(packet)

    def _deliver_block(self, block: PacketBlock) -> None:
        agg = self._agg_out
        if agg is not None:
            acc = agg[block.direction]
            acc.bytes += block.size
            acc.packets += block.count
        elif self._m_out is not None:
            self._m_out[block.direction].inc(block.size)
        receivers = self._block_receivers
        if receivers:
            for receiver in receivers:
                receiver(block)
        else:
            for packet in block.packets():
                for receiver in self._receivers:
                    receiver(packet)
