"""The packet record shared by every substrate.

Packets carry enough metadata for charging (size, owning flow, direction,
QCI) without any payload bytes — the evaluation only ever uses volume and
timing statistics, never content.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Traffic direction relative to the edge device."""

    UPLINK = "uplink"      # device -> server
    DOWNLINK = "downlink"  # server -> device

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """A simulated IP packet.

    ``slots=True`` because millions of these are created per campaign:
    slotted instances allocate no per-object ``__dict__`` and make the
    attribute reads on every hop of the LTE chain measurably cheaper.

    Attributes
    ----------
    size:
        Total on-the-wire bytes (headers included) — the unit the charging
        gateway meters.
    flow:
        Name of the owning application flow (e.g. ``"webcam-rtsp"``).
    direction:
        Uplink or downlink relative to the device.
    qci:
        LTE QoS Class Identifier of the bearer carrying this packet;
        QCI=7 marks the accelerated gaming traffic, QCI=9 best-effort.
    created_at:
        Simulated send timestamp (set by the sender).
    seq:
        Per-flow sequence number (used by TCP-like retransmission).
    retransmission:
        True when this packet is a retransmitted copy (spurious
        retransmissions are one of the §3.1 gap causes).
    """

    size: int
    flow: str
    direction: Direction
    qci: int = 9
    created_at: float = 0.0
    seq: int = 0
    retransmission: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive: {self.size}")

    def copy_for_retransmission(self) -> "Packet":
        """A fresh packet object carrying the same flow bytes again."""
        return Packet(
            size=self.size,
            flow=self.flow,
            direction=self.direction,
            qci=self.qci,
            created_at=self.created_at,
            seq=self.seq,
            retransmission=True,
        )
