"""Frame-granular packet blocks: the fluid-mode unit of work.

The paper's charging results are statements about *byte totals per
layer*, never about packet identity, so the fluid fast path moves one
:class:`PacketBlock` per video frame through the same LTE elements that
normally see per-packet calls.  A block is the column-store view of the
frame's packets: one metadata tuple (flow, direction, QCI, emission
instant) shared by all of them plus a numpy array of on-the-wire sizes.
Loss processes act on the array (a vectorized threshold compare against
a block of uniforms from :class:`~repro.sim.sampling.ChunkedRandom`),
and every counting point adds ``block.size`` / ``block.count`` where it
would have added ``packet.size`` / ``1`` — which is why the totals land
bit-identical to packet mode under the same seed.

Blocks deliberately do not carry per-packet sequence numbers past a
loss point (:meth:`compress` keeps only ``seq_start``); elements that
need true packet semantics — the quota shaper mid-transition, a PCRF
classifying per packet, any scalar-only receiver — call
:meth:`packets` to drop the block back to packet granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.packet import Direction, Packet


@dataclass(slots=True)
class PacketBlock:
    """All packets of one frame emission, as arrays plus shared metadata.

    Attributes
    ----------
    sizes:
        Per-packet on-the-wire byte counts (``int64``), in emission
        order.  Must be one-dimensional, non-empty, and positive.
    flow / direction / qci / created_at:
        Shared by every packet of the frame (all packets of a frame are
        emitted at one simulated instant, see ``Workload._emit_frame``).
    seq_start:
        Sequence number of the first packet; the frame occupies
        ``[seq_start, seq_start + count)``.
    size / count:
        Cached totals (``sizes.sum()`` / ``len(sizes)``) — the two
        numbers every counting point on the LTE chain reads.
    """

    sizes: np.ndarray
    flow: str
    direction: Direction
    qci: int = 9
    created_at: float = 0.0
    seq_start: int = 0
    size: int = field(init=False)
    count: int = field(init=False)

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.int64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError(
                f"a packet block needs a 1-D non-empty size array, got "
                f"shape {sizes.shape}"
            )
        if (sizes <= 0).any():
            raise ValueError("packet sizes must be positive")
        self.sizes = sizes
        self.count = int(sizes.size)
        self.size = int(sizes.sum())

    @classmethod
    def _raw(
        cls,
        sizes: np.ndarray,
        flow: str,
        direction: Direction,
        qci: int,
        created_at: float,
        seq_start: int,
        size: int,
        count: int,
    ) -> "PacketBlock":
        """Trusted constructor: no validation, totals supplied by the
        caller.  Every block creation on the fluid hot path already
        knows its byte total (a loss draw computes the lost bytes, so
        the survivor total is a subtraction), and re-deriving it via
        ``sizes.sum()`` in ``__post_init__`` was the single largest
        per-frame numpy cost.  Internal use only — sizes must already
        be a validated 1-D positive ``int64`` array.
        """
        block = cls.__new__(cls)
        block.sizes = sizes
        block.flow = flow
        block.direction = direction
        block.qci = qci
        block.created_at = created_at
        block.seq_start = seq_start
        block.size = size
        block.count = count
        return block

    def _with_sizes(
        self, sizes: np.ndarray, seq_start: int, size: int, count: int
    ) -> "PacketBlock":
        return PacketBlock._raw(
            sizes,
            self.flow,
            self.direction,
            self.qci,
            self.created_at,
            seq_start,
            size,
            count,
        )

    def split(
        self, head_count: int
    ) -> tuple["PacketBlock | None", "PacketBlock | None"]:
        """(first ``head_count`` packets, the rest) — either side may be
        ``None`` when empty.  Used by the channel's outage buffer, which
        admits packets up to capacity and overflows the tail.
        """
        if head_count <= 0:
            return None, self
        if head_count >= self.count:
            return self, None
        head_size = int(self.sizes[:head_count].sum())
        return (
            self._with_sizes(
                self.sizes[:head_count],
                self.seq_start,
                head_size,
                head_count,
            ),
            self._with_sizes(
                self.sizes[head_count:],
                self.seq_start + head_count,
                self.size - head_size,
                self.count - head_count,
            ),
        )

    def compress(
        self,
        keep: np.ndarray,
        size: int | None = None,
        count: int | None = None,
    ) -> "PacketBlock":
        """The surviving sub-block after a loss draw (``keep`` is a
        boolean mask over :attr:`sizes` with at least one True).
        Survivor sequence numbers are *not* preserved individually —
        volume accounting never reads them.  Callers that already know
        the survivor totals (hot paths subtract the lost bytes they
        just accounted) pass ``size``/``count`` to skip re-summing.
        """
        survivors = self.sizes[keep]
        if count is None:
            count = int(survivors.size)
        if size is None:
            size = int(survivors.sum())
        return self._with_sizes(survivors, self.seq_start, size, count)

    def packets(self) -> list[Packet]:
        """Materialize the block as per-packet objects (fallback path)."""
        flow = self.flow
        direction = self.direction
        qci = self.qci
        created_at = self.created_at
        seq = self.seq_start
        return [
            Packet(
                size=int(size),
                flow=flow,
                direction=direction,
                qci=qci,
                created_at=created_at,
                seq=seq + i,
            )
            for i, size in enumerate(self.sizes)
        ]

    @classmethod
    def from_packets(cls, packets: "list[Packet]") -> "PacketBlock":
        """Build a block from uniform-metadata packets (test helper)."""
        if not packets:
            raise ValueError("cannot build a block from zero packets")
        first = packets[0]
        for p in packets[1:]:
            if (
                p.flow != first.flow
                or p.direction is not first.direction
                or p.qci != first.qci
                or p.created_at != first.created_at
            ):
                raise ValueError(
                    "packets of one block must share flow, direction, "
                    "qci, and created_at"
                )
        return cls(
            sizes=np.array([p.size for p in packets], dtype=np.int64),
            flow=first.flow,
            direction=first.direction,
            qci=first.qci,
            created_at=first.created_at,
            seq_start=first.seq,
        )
