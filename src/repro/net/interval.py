"""Closed-form interval advancement primitives.

Analytic mode (``ScenarioConfig(mode="analytic")``) advances whole
*stable intervals* — stretches of simulated time in which no
discontinuity fires (no channel-state transition, no session change, no
quota crossing, no snapshot or CDR boundary) — in one step per network
layer instead of one event per packet or frame.  The unit of work is an
:class:`IntervalFlow`: the aggregate of every packet a flow would have
emitted in the interval, carried as two integers (packet count and wire
bytes) plus the shared metadata a :class:`~repro.net.block.PacketBlock`
would carry.

Loss layers act on an interval flow through the **rounding contract**
every analytic element follows (documented in docs/architecture.md and
enforced by ``tests/net/test_interval.py``):

- the *expected* loss of the interval is ``n × rate`` packets;
- it is integerized by :func:`stochastic_round` against **one** uniform
  draw from the layer's own :class:`~repro.sim.sampling.ChunkedRandom`
  stream, consumed only when the layer's rate and the interval's packet
  count are both nonzero, in pipeline order — so the draw sequence is a
  pure, seed-stable function of the interval sequence;
- lost bytes are apportioned by :func:`split_loss_bytes` (round-nearest
  of the pro-rata share, clamped so both the lost and surviving parts
  stay consistent with their packet counts), so
  ``lost_bytes + survivor_bytes == bytes`` holds *exactly* and the
  telemetry accounting identity ``counted − Σ losses_by_layer ==
  received`` closes on integers, never on expectations.

:func:`stochastic_round` is unbiased (``E[round(x, U)] = x`` for
``U ~ Uniform[0,1)``), which is what keeps analytic byte totals within
the derived tolerance of the fluid run they replace
(:func:`repro.experiments.equivalence.derived_tolerance`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.net.packet import Direction


def stochastic_round(value: float, u: float) -> int:
    """Integerize ``value`` against one uniform draw ``u`` in [0, 1).

    Returns ``floor(value) + 1`` when ``u`` falls below the fractional
    part, else ``floor(value)`` — the unbiased rounding every analytic
    loss layer and the analytic workload use.  Negative values are
    rejected (byte and packet expectations are never negative).
    """
    if value < 0:
        raise ValueError(f"cannot round a negative expectation: {value}")
    if not 0.0 <= u < 1.0:
        raise ValueError(f"uniform draw outside [0, 1): {u}")
    base = math.floor(value)
    return int(base) + (1 if u < value - base else 0)


def split_loss_bytes(packets: int, size: int, lost_packets: int) -> int:
    """Bytes charged to ``lost_packets`` of an interval's ``packets``.

    The pro-rata share ``size × lost / packets`` rounded to nearest
    (half away from zero via the ``(2·size·lost + packets) // (2·packets)``
    integer form), clamped so the lost part carries at least one byte
    per lost packet and the surviving part at least one byte per
    survivor — the same positivity invariant real packet sizes obey.
    """
    if packets <= 0:
        raise ValueError(f"interval must have packets to lose: {packets}")
    if not 0 <= lost_packets <= packets:
        raise ValueError(
            f"lost packets outside [0, {packets}]: {lost_packets}"
        )
    if lost_packets == 0:
        return 0
    if lost_packets == packets:
        return size
    share = (2 * size * lost_packets + packets) // (2 * packets)
    return max(lost_packets, min(share, size - (packets - lost_packets)))


@dataclass(frozen=True)
class IntervalFlow:
    """One stable interval's traffic aggregate for one flow.

    The analytic counterpart of a :class:`~repro.net.block.PacketBlock`:
    ``packets`` and ``bytes`` are what every counting point on the LTE
    chain adds where the block path would add ``block.count`` /
    ``block.size``; the metadata mirrors the block's shared tuple.
    A zero-packet flow (``IntervalFlow.empty``) is the identity every
    element passes through untouched.
    """

    packets: int
    bytes: int
    flow: str
    direction: Direction
    qci: int = 9

    def __post_init__(self) -> None:
        if self.packets < 0 or self.bytes < 0:
            raise ValueError(
                f"negative interval aggregate: packets={self.packets} "
                f"bytes={self.bytes}"
            )
        if self.packets == 0 and self.bytes != 0:
            raise ValueError(
                f"{self.bytes} bytes with zero packets"
            )
        if self.packets > 0 and self.bytes < self.packets:
            raise ValueError(
                f"{self.packets} packets need >= 1 byte each, got "
                f"{self.bytes}"
            )

    @classmethod
    def empty(cls, flow: str, direction: Direction, qci: int = 9):
        """The zero aggregate (identity of :meth:`merge`)."""
        return cls(
            packets=0, bytes=0, flow=flow, direction=direction, qci=qci
        )

    @property
    def is_empty(self) -> bool:
        """True when the interval carried no traffic."""
        return self.packets == 0

    def merge(self, other: "IntervalFlow") -> "IntervalFlow":
        """Fold two aggregates of the same flow (associative)."""
        if (
            other.flow != self.flow
            or other.direction is not self.direction
            or other.qci != self.qci
        ):
            raise ValueError("cannot merge aggregates of different flows")
        return replace(
            self,
            packets=self.packets + other.packets,
            bytes=self.bytes + other.bytes,
        )

    def drop(self, lost_packets: int) -> tuple["IntervalFlow", int]:
        """(survivors, lost_bytes) after losing ``lost_packets``.

        Lost bytes follow :func:`split_loss_bytes`; the survivor
        aggregate carries exactly ``bytes − lost_bytes``, so byte
        conservation is structural.
        """
        if self.is_empty and lost_packets == 0:
            return self, 0
        lost_bytes = split_loss_bytes(self.packets, self.bytes, lost_packets)
        survivors = replace(
            self,
            packets=self.packets - lost_packets,
            bytes=self.bytes - lost_bytes,
        )
        return survivors, lost_bytes

    def expected_drop(
        self, rate: float, u: float
    ) -> tuple["IntervalFlow", int, int]:
        """Apply an i.i.d. loss ``rate``: (survivors, lost_packets,
        lost_bytes), integerized by :func:`stochastic_round` against
        ``u``.  Callers must follow the draw contract: consume ``u``
        from the layer's own stream only when ``rate > 0`` and the
        interval is non-empty.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate outside [0, 1]: {rate}")
        lost = min(self.packets, stochastic_round(self.packets * rate, u))
        survivors, lost_bytes = self.drop(lost)
        return survivors, lost, lost_bytes

    def take(self, head_packets: int) -> tuple["IntervalFlow", "IntervalFlow"]:
        """(first ``head_packets``, the rest) — the analytic analogue of
        :meth:`~repro.net.block.PacketBlock.split`, used by the channel's
        outage buffer to admit up to its capacity.
        """
        head_packets = max(0, min(head_packets, self.packets))
        rest, head_bytes = self.drop(head_packets)
        head = replace(self, packets=head_packets, bytes=head_bytes)
        return head, rest
