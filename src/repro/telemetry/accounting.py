"""Per-layer byte accounting: the gap, reconciled layer by layer.

Legacy charging disagrees with the device because the gateway meters
downlink *before* the loss processes and uplink *after* them (§2.1,
§3.1).  This module folds a telemetry session's counters into a table
with one row per packet-path element, and checks the identity the whole
reproduction rests on — every byte the sender-side meter counted is
either dropped by a named layer (with a cause), still in flight/buffered
at snapshot time, or counted by the receiver-side meter:

``counted_at_sender − Σ losses_by_layer == counted_at_receiver``

Counting-point conventions (all counters, all in bytes):

- ``bytes_in{layer, direction}`` — entering a pipeline element,
- ``bytes_out{layer, direction}`` — delivered downstream by the element,
- ``bytes_dropped{layer, direction, cause}`` — dropped, with the cause
  (``congestion``, ``rss_loss``, ``buffer_overflow``, ``sla_expired``,
  ``quota_throttle``, ``detached``, ``link_loss``),
- ``bytes_counted{layer, direction, ...}`` — at the metering points
  (``gateway``, ``ue_modem``, ``ue_os``, ``ue_app``, ``ofcs``),
- ``bytes_fault_uncounted{layer, direction}`` — the fault ledger column:
  bytes that crossed a metering point but vanished from the *party's*
  billing record because a crash fault wiped volatile counter state
  (:meth:`repro.lte.gateway.ChargingGateway.crash`).  The telemetry
  counters themselves are observer-side and survive the crash, so the
  packet-path identity still reconciles exactly; this column is what
  reconciles the metering record with the billing record:
  ``billed == counted − fault_uncounted``.

A layer's loss contribution is its dropped bytes plus its in-flight
residue ``bytes_in − bytes_out − dropped`` (bytes scheduled for delivery
or parked in a link-layer buffer when the run ended).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Loss layers between the two meters, in packet-path order.
DOWNLINK_PATH = ("throttle", "dl-queue", "sla", "air")
UPLINK_PATH = ("air", "ul-queue", "gateway")

#: The metering anchors per direction: (sender-side, receiver-side).
METERS = {
    "downlink": ("gateway", "ue_modem"),
    "uplink": ("ue_modem", "gateway"),
}


class _CounterIndex:
    """Label-filtered sums over a metrics snapshot's counter list."""

    def __init__(self, counters: list[dict[str, Any]]) -> None:
        self._counters = counters

    def total(self, name: str, **label_filter: Any) -> float:
        wanted = label_filter.items()
        total = 0.0
        for entry in self._counters:
            if entry["name"] != name:
                continue
            labels = entry.get("labels", {})
            if all(labels.get(k) == v for k, v in wanted):
                total += entry["value"]
        return total

    def causes(self, layer: str, direction: str) -> dict[str, float]:
        """Dropped bytes by cause for one (layer, direction)."""
        out: dict[str, float] = {}
        for entry in self._counters:
            if entry["name"] != "bytes_dropped":
                continue
            labels = entry.get("labels", {})
            if labels.get("layer") != layer:
                continue
            if labels.get("direction") != direction:
                continue
            cause = labels.get("cause", "unspecified")
            out[cause] = out.get(cause, 0.0) + entry["value"]
        return out


@dataclass
class LayerAccount:
    """One packet-path element's byte balance for one direction."""

    layer: str
    bytes_in: float
    bytes_out: float
    dropped: dict[str, float] = field(default_factory=dict)

    @property
    def dropped_total(self) -> float:
        """All bytes this layer dropped, across causes."""
        return sum(self.dropped.values())

    @property
    def in_flight(self) -> float:
        """Bytes inside the element (buffered or scheduled) at snapshot."""
        return self.bytes_in - self.bytes_out - self.dropped_total

    @property
    def lost(self) -> float:
        """This layer's contribution to the charging gap."""
        return self.dropped_total + self.in_flight

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form."""
        return {
            "layer": self.layer,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "dropped": dict(self.dropped),
            "in_flight": self.in_flight,
        }


@dataclass
class AccountingTable:
    """The reconciled per-layer byte-accounting of one scenario run."""

    direction: str
    sender_layer: str
    receiver_layer: str
    counted: float
    received: float
    rows: list[LayerAccount] = field(default_factory=list)
    #: Fault ledger column: per-meter bytes wiped from the billing record
    #: by crash faults (empty when no fault plan ran).
    fault_uncounted: dict[str, float] = field(default_factory=dict)

    @property
    def losses_by_layer(self) -> dict[str, float]:
        """Each loss layer's total contribution (drops + in flight)."""
        return {row.layer: row.lost for row in self.rows}

    @property
    def total_losses(self) -> float:
        """Σ losses_by_layer."""
        return sum(self.losses_by_layer.values())

    @property
    def residual(self) -> float:
        """``counted − Σ losses − received``; 0 when fully reconciled."""
        return self.counted - self.total_losses - self.received

    @property
    def reconciles(self) -> bool:
        """True when every counted byte is accounted for exactly."""
        return self.residual == 0

    def billed(self, meter: str) -> float:
        """What ``meter``'s surviving billing record holds.

        The metering identity counts bytes as they cross the meter; a
        crash fault can wipe part of that record afterwards.  The billed
        volume is therefore the counted volume minus the meter's fault
        ledger column.
        """
        if meter == self.sender_layer:
            counted = self.counted
        elif meter == self.receiver_layer:
            counted = self.received
        else:
            raise ValueError(
                f"{meter!r} is not a metering layer of this table "
                f"({self.sender_layer!r}/{self.receiver_layer!r})"
            )
        return counted - self.fault_uncounted.get(meter, 0.0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form (what campaign results persist)."""
        return {
            "direction": self.direction,
            "sender_layer": self.sender_layer,
            "receiver_layer": self.receiver_layer,
            "counted": self.counted,
            "received": self.received,
            "rows": [row.as_dict() for row in self.rows],
            "fault_uncounted": dict(self.fault_uncounted),
            "total_losses": self.total_losses,
            "residual": self.residual,
            "reconciles": self.reconciles,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AccountingTable":
        """Rebuild a table from :meth:`as_dict` output."""
        return cls(
            direction=data["direction"],
            sender_layer=data["sender_layer"],
            receiver_layer=data["receiver_layer"],
            counted=data["counted"],
            received=data["received"],
            rows=[
                LayerAccount(
                    layer=row["layer"],
                    bytes_in=row["bytes_in"],
                    bytes_out=row["bytes_out"],
                    dropped=dict(row["dropped"]),
                )
                for row in data["rows"]
            ],
            fault_uncounted=dict(data.get("fault_uncounted", {})),
        )

    @classmethod
    def merged(cls, tables: "Iterable[AccountingTable]") -> "AccountingTable":
        """Fold per-shard (or per-UE) tables into the population table.

        Accounting tables form a **commutative monoid** under this
        merge: ``counted``/``received`` and every row's
        ``bytes_in``/``bytes_out``/``dropped`` cause are summed per
        layer, and ``fault_uncounted`` is summed per meter.  All of
        those are integer byte quantities, so the merge is exact,
        associative, and order-independent, and the merged residual is
        the sum of the input residuals — tables that reconcile
        individually reconcile merged, whatever the shard count
        (see :mod:`repro.experiments.sharding`).

        Rows come out in packet-path order (the order
        :func:`build_accounting` emits).  All inputs must agree on
        ``direction``; an empty iterable raises ``ValueError`` because
        a table needs a direction to be well-formed.
        """
        tables = list(tables)
        if not tables:
            raise ValueError("cannot merge zero accounting tables")
        first = tables[0]
        counted: float = 0
        received: float = 0
        by_layer: dict[str, LayerAccount] = {}
        fault_uncounted: dict[str, float] = {}
        for table in tables:
            if table.direction != first.direction:
                raise ValueError(
                    "cannot merge accounting tables across directions: "
                    f"{first.direction!r} vs {table.direction!r}"
                )
            counted += table.counted
            received += table.received
            for row in table.rows:
                merged_row = by_layer.get(row.layer)
                if merged_row is None:
                    by_layer[row.layer] = LayerAccount(
                        layer=row.layer,
                        bytes_in=row.bytes_in,
                        bytes_out=row.bytes_out,
                        dropped=dict(row.dropped),
                    )
                else:
                    merged_row.bytes_in += row.bytes_in
                    merged_row.bytes_out += row.bytes_out
                    for cause, amount in row.dropped.items():
                        merged_row.dropped[cause] = (
                            merged_row.dropped.get(cause, 0) + amount
                        )
            for meter, wiped in table.fault_uncounted.items():
                fault_uncounted[meter] = (
                    fault_uncounted.get(meter, 0) + wiped
                )
        path = (
            DOWNLINK_PATH if first.direction == "downlink" else UPLINK_PATH
        )
        rows = [by_layer[layer] for layer in path if layer in by_layer]
        # A layer outside the canonical path (a future topology) still
        # merges; it sorts after the path rows deterministically.
        rows += [
            row
            for layer, row in sorted(by_layer.items())
            if layer not in path
        ]
        return cls(
            direction=first.direction,
            sender_layer=first.sender_layer,
            receiver_layer=first.receiver_layer,
            counted=counted,
            received=received,
            rows=rows,
            fault_uncounted=fault_uncounted,
        )


def build_accounting(
    metrics_snapshot: Mapping[str, Any], direction: str
) -> AccountingTable:
    """Fold a metrics snapshot into the per-layer table for one direction.

    ``metrics_snapshot`` is :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`
    output (or the ``"metrics"`` entry of a scenario's telemetry extras);
    ``direction`` is ``"downlink"`` or ``"uplink"``.
    """
    if direction not in METERS:
        raise ValueError(
            f"direction must be one of {sorted(METERS)}: {direction!r}"
        )
    index = _CounterIndex(list(metrics_snapshot.get("counters", [])))
    sender_layer, receiver_layer = METERS[direction]
    path = DOWNLINK_PATH if direction == "downlink" else UPLINK_PATH

    rows: list[LayerAccount] = []
    for layer in path:
        bytes_in = index.total("bytes_in", layer=layer, direction=direction)
        dropped = index.causes(layer, direction)
        if bytes_in == 0 and not dropped:
            continue  # element not present in this topology
        rows.append(
            LayerAccount(
                layer=layer,
                bytes_in=bytes_in,
                bytes_out=index.total(
                    "bytes_out", layer=layer, direction=direction
                ),
                dropped=dropped,
            )
        )

    fault_uncounted: dict[str, float] = {}
    for meter in (sender_layer, receiver_layer):
        wiped = index.total(
            "bytes_fault_uncounted", layer=meter, direction=direction
        )
        if wiped:
            fault_uncounted[meter] = wiped

    return AccountingTable(
        direction=direction,
        sender_layer=sender_layer,
        receiver_layer=receiver_layer,
        counted=index.total(
            "bytes_counted", layer=sender_layer, direction=direction
        ),
        received=index.total(
            "bytes_counted", layer=receiver_layer, direction=direction
        ),
        rows=rows,
        fault_uncounted=fault_uncounted,
    )
