"""Per-layer charging telemetry: metrics, tracing, byte accounting.

The paper's argument is about *where* bytes are counted versus where
they are lost (§3 gateway CDRs vs. device receipts, §5.4 RRC COUNTER
CHECK).  This package makes those counting points observable: every
metering/loss element publishes counters into a
:class:`~repro.telemetry.metrics.MetricsRegistry` and structured events
into a :class:`~repro.telemetry.trace.TraceBuffer` (or a live, buffered
:class:`~repro.telemetry.trace.TraceSink`), both scoped to one
:class:`Telemetry` session, and
:mod:`repro.telemetry.accounting` folds a session's metrics into a
per-layer byte-accounting table that must reconcile exactly:
``counted_at_sender − Σ losses_by_layer == counted_at_receiver``.

Activation model
----------------

Telemetry is *opt-in per scenario* and **free when off**:

- :func:`current` returns the active session or ``None``.  Instrumented
  components capture it once at construction time; their hot paths guard
  every telemetry call with ``if self._telemetry is not None`` — a single
  attribute load and identity check, so a run with no sink attached pays
  no measurable overhead (``benchmarks/test_telemetry_overhead.py``).
- :func:`activation` scopes a session to a ``with`` block; everything
  constructed inside it (networks, channels, monitors, agents) publishes
  into that session.  Scenario runs do this when
  ``ScenarioConfig.telemetry`` is set — which is what the CLI's
  ``--metrics-out``/``--trace`` flags and the campaign engine's
  ``telemetry=True`` turn on.

Write-path performance
----------------------

Metered runs stay on the hot path too (the perf gate holds
``telemetry_on`` within 1.5x of ``telemetry_off``):

- Components *bind* their instruments at construction time
  (:meth:`Telemetry.bind_counter` and friends): one canonicalizing
  lookup per site, then plain ``handle.inc(n)`` attribute increments
  per packet.  The kwarg-style :meth:`inc`/:meth:`set`/:meth:`observe`
  remain as a compatible slow path for cold or dynamic-label sites.
- High-frequency packet elements additionally *burst-aggregate*: they
  accumulate contiguous same-outcome byte runs in plain integers and
  fold them into their bound counters on :meth:`Telemetry.flush`
  (sums of non-negative integers, so snapshots are exactly equal to
  per-packet instrumentation).  :attr:`Telemetry.burst_aggregation`
  switches the mode; the equivalence suite runs both and compares.

>>> from repro import telemetry
>>> print(telemetry.current())
None
>>> session = telemetry.Telemetry()
>>> with telemetry.activation(session):
...     telemetry.current() is session
True
>>> session.inc("bytes_counted", 42, layer="gateway", direction="downlink")
>>> session.registry.value("bytes_counted", layer="gateway", direction="downlink")
42
>>> handle = session.bind_counter(
...     "bytes_counted", direction="downlink", layer="gateway"
... )
>>> handle.inc(8)
>>> session.registry.value("bytes_counted", layer="gateway", direction="downlink")
50
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.telemetry.metrics import (
    BoundCounter,
    BoundGauge,
    BoundHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunAccumulator,
    flush_all,
)
from repro.telemetry.merge import (
    SnapshotAccumulator,
    empty_snapshot,
    merge_snapshots,
)
from repro.telemetry.trace import (
    TraceBuffer,
    TraceEvent,
    TraceSink,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "BoundCounter",
    "BoundGauge",
    "BoundHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunAccumulator",
    "SnapshotAccumulator",
    "Telemetry",
    "TraceBuffer",
    "TraceEvent",
    "TraceSink",
    "activation",
    "current",
    "empty_snapshot",
    "flush_all",
    "merge_snapshots",
    "read_jsonl",
    "write_jsonl",
]


class Telemetry:
    """One telemetry session: a metrics registry plus a trace sink.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time;
        scenario runs bind it to their event loop.  Defaults to a clock
        stuck at 0.0 (metrics don't need time; traces do).
    capture_trace:
        When False (the default), trace events are not buffered in
        memory — metrics-only sessions stay lean.
    sink:
        Optional live :class:`~repro.telemetry.trace.TraceSink`: trace
        events stream through its buffered JSONL writer as they happen
        (independently of ``capture_trace``).  The caller owns the
        sink's lifecycle — use it as a context manager so it flushes
        and closes even when the run raises.
    burst_aggregation:
        Whether high-frequency packet elements may fold contiguous
        same-outcome byte runs into one counter update at flush time
        instead of incrementing per packet.  ``None`` (default) takes
        the class-level :attr:`BURST_AGGREGATION`; the equivalence
        suite pins it ``False`` to compare against per-packet
        instrumentation.
    """

    #: Default burst-aggregation mode for new sessions.
    BURST_AGGREGATION = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capture_trace: bool = False,
        sink: TraceSink | None = None,
        burst_aggregation: bool | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.trace: TraceBuffer | None = (
            TraceBuffer(clock) if capture_trace else None
        )
        self.sink = sink
        if sink is not None and sink.clock is None:
            sink.clock = clock
        self.burst_aggregation = (
            self.BURST_AGGREGATION
            if burst_aggregation is None
            else bool(burst_aggregation)
        )
        # Burst accumulators register a callback here; flush() folds
        # their pending integer runs into the registry before any read.
        self._flushers: list[Callable[[], None]] = []

    # -- metrics write path --------------------------------------------

    def bind_counter(self, name: str, **labels: Any) -> BoundCounter:
        """A pre-resolved counter handle (the hot-path write API)."""
        return self.registry.bind_counter(name, **labels)

    def bind_gauge(self, name: str, **labels: Any) -> BoundGauge:
        """A pre-resolved gauge handle."""
        return self.registry.bind_gauge(name, **labels)

    def bind_histogram(self, name: str, **labels: Any) -> BoundHistogram:
        """A pre-resolved histogram handle."""
        return self.registry.bind_histogram(name, **labels)

    def inc(self, name: str, amount: int | float = 1, **labels: Any) -> None:
        """Increment the counter for (name, labels) — kwarg slow path."""
        self.registry.inc(name, amount, **labels)

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge for (name, labels) — kwarg slow path."""
        self.registry.set(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record a histogram sample for (name, labels) — kwarg slow path."""
        self.registry.observe(name, value, **labels)

    # -- burst aggregation ---------------------------------------------

    def on_flush(self, callback: Callable[[], None]) -> None:
        """Register a callback run by :meth:`flush` (burst accumulators)."""
        self._flushers.append(callback)

    def flush(self) -> None:
        """Fold every pending burst accumulation into the registry.

        Must run before reading the registry of a live run (snapshots
        do this automatically); flushing twice is harmless — the
        accumulators drain on flush.
        """
        for callback in self._flushers:
            callback()

    # -- tracing --------------------------------------------------------

    def event(self, layer: str, event: str, **fields: Any) -> None:
        """Emit a structured trace event (no-op unless capturing)."""
        if self.trace is not None:
            self.trace.emit(layer, event, **fields)
        if self.sink is not None:
            self.sink.emit(layer, event, **fields)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: all metrics, plus trace events if captured."""
        self.flush()
        out: dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.trace is not None:
            out["trace"] = self.trace.as_dicts()
        return out


# The active session. ``None`` means telemetry is off and every
# instrumented component constructed now will skip its hooks entirely.
_current: Telemetry | None = None


def current() -> Telemetry | None:
    """The active telemetry session, or ``None`` when telemetry is off."""
    return _current


@contextmanager
def activation(session: Telemetry | None) -> Iterator[Telemetry | None]:
    """Scope ``session`` as the active one for the ``with`` block.

    Passing ``None`` is allowed and leaves telemetry off — callers can
    wrap unconditionally.  The previous session is restored on exit even
    if the block raises.
    """
    global _current
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous
