"""Per-layer charging telemetry: metrics, tracing, byte accounting.

The paper's argument is about *where* bytes are counted versus where
they are lost (§3 gateway CDRs vs. device receipts, §5.4 RRC COUNTER
CHECK).  This package makes those counting points observable: every
metering/loss element publishes counters into a
:class:`~repro.telemetry.metrics.MetricsRegistry` and structured events
into a :class:`~repro.telemetry.trace.TraceBuffer`, both scoped to one
:class:`Telemetry` session, and
:mod:`repro.telemetry.accounting` folds a session's metrics into a
per-layer byte-accounting table that must reconcile exactly:
``counted_at_sender − Σ losses_by_layer == counted_at_receiver``.

Activation model
----------------

Telemetry is *opt-in per scenario* and **free when off**:

- :func:`current` returns the active session or ``None``.  Instrumented
  components capture it once at construction time; their hot paths guard
  every telemetry call with ``if self._telemetry is not None`` — a single
  attribute load and identity check, so a run with no sink attached pays
  no measurable overhead (``benchmarks/test_telemetry_overhead.py``).
- :func:`activation` scopes a session to a ``with`` block; everything
  constructed inside it (networks, channels, monitors, agents) publishes
  into that session.  Scenario runs do this when
  ``ScenarioConfig.telemetry`` is set — which is what the CLI's
  ``--metrics-out``/``--trace`` flags and the campaign engine's
  ``telemetry=True`` turn on.

>>> from repro import telemetry
>>> print(telemetry.current())
None
>>> session = telemetry.Telemetry()
>>> with telemetry.activation(session):
...     telemetry.current() is session
True
>>> session.inc("bytes_counted", 42, layer="gateway", direction="downlink")
>>> session.registry.value("bytes_counted", layer="gateway", direction="downlink")
42
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import (
    TraceBuffer,
    TraceEvent,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TraceBuffer",
    "TraceEvent",
    "activation",
    "current",
    "read_jsonl",
    "write_jsonl",
]


class Telemetry:
    """One telemetry session: a metrics registry plus a trace sink.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time;
        scenario runs bind it to their event loop.  Defaults to a clock
        stuck at 0.0 (metrics don't need time; traces do).
    capture_trace:
        When False (the default), :meth:`event` is a no-op and no trace
        buffer is kept — metrics-only sessions stay lean.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capture_trace: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.trace: TraceBuffer | None = (
            TraceBuffer(clock) if capture_trace else None
        )

    # -- metrics write path (delegates to the registry) ----------------

    def inc(self, name: str, amount: int | float = 1, **labels: Any) -> None:
        """Increment the counter for (name, labels)."""
        self.registry.inc(name, amount, **labels)

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge for (name, labels)."""
        self.registry.set(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record a histogram sample for (name, labels)."""
        self.registry.observe(name, value, **labels)

    # -- tracing --------------------------------------------------------

    def event(self, layer: str, event: str, **fields: Any) -> None:
        """Emit a structured trace event (no-op unless capturing)."""
        if self.trace is not None:
            self.trace.emit(layer, event, **fields)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: all metrics, plus trace events if captured."""
        out: dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.trace is not None:
            out["trace"] = self.trace.as_dicts()
        return out


# The active session. ``None`` means telemetry is off and every
# instrumented component constructed now will skip its hooks entirely.
_current: Telemetry | None = None


def current() -> Telemetry | None:
    """The active telemetry session, or ``None`` when telemetry is off."""
    return _current


@contextmanager
def activation(session: Telemetry | None) -> Iterator[Telemetry | None]:
    """Scope ``session`` as the active one for the ``with`` block.

    Passing ``None`` is allowed and leaves telemetry off — callers can
    wrap unconditionally.  The previous session is restored on exit even
    if the block raises.
    """
    global _current
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous
