"""Merging metric snapshots across shards: the telemetry monoid.

A sharded population run (see :mod:`repro.experiments.sharding`) slices
one scenario's UE population into sub-simulations whose telemetry must
recombine into the view a single simulation of the whole population
would have produced.  That recombination is a **commutative monoid**
over the plain-dict snapshots :meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`
emits:

- **counters** — summed per ``(name, labels)`` series.  Byte counters
  are integers end to end, so sums are exact, associative, and
  order-independent; the merged accounting identity
  ``counted − Σ losses_by_layer == received`` follows from the per-UE
  identities by plain addition.
- **gauges** — summed per series.  Every gauge in this codebase is an
  additive byte quantity (e.g. ``settled_volume``), so the population
  total is the meaningful merged reading.
- **histograms** — ``count`` and ``total`` sum; ``min``/``max`` take
  the extremes; ``mean`` is recomputed from the merged count/total
  (never averaged from per-shard means).

The identity element is the empty snapshot
(:func:`empty_snapshot` / a fresh :class:`SnapshotAccumulator`), and
output series are emitted in a canonical sort order, so
``merge(merge(a, b), c)``, ``merge(a, merge(b, c))``, and any input
permutation produce byte-identical snapshots for integer-valued series
— the property :mod:`tests.telemetry.test_merge` locks down.

:class:`SnapshotAccumulator` is the streaming form: a shard folds each
UE's snapshot in as soon as the UE finishes and discards the per-UE
session, so shard memory stays bounded by one live scenario plus one
accumulated snapshot regardless of population size.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

#: A canonical series key: (name, sorted (label, value) tuple).
_SeriesKey = tuple[str, tuple[tuple[str, Any], ...]]


def _series_key(entry: Mapping[str, Any]) -> _SeriesKey:
    return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))


def empty_snapshot() -> dict[str, list[dict[str, Any]]]:
    """The monoid identity: a snapshot with no series at all."""
    return {"counters": [], "gauges": [], "histograms": []}


class SnapshotAccumulator:
    """Fold metric snapshots one at a time; read the merged snapshot out.

    >>> acc = SnapshotAccumulator()
    >>> acc.add({"counters": [
    ...     {"name": "bytes_counted", "labels": {"layer": "gateway"},
    ...      "value": 100}], "gauges": [], "histograms": []})
    >>> acc.add({"counters": [
    ...     {"name": "bytes_counted", "labels": {"layer": "gateway"},
    ...      "value": 50}], "gauges": [], "histograms": []})
    >>> acc.snapshot()["counters"]
    [{'name': 'bytes_counted', 'labels': {'layer': 'gateway'}, 'value': 150}]
    """

    def __init__(self) -> None:
        self._counters: dict[_SeriesKey, int | float] = {}
        self._gauges: dict[_SeriesKey, int | float] = {}
        self._histograms: dict[_SeriesKey, dict[str, Any]] = {}
        self._folded = 0

    @property
    def folded(self) -> int:
        """How many snapshots have been folded in so far."""
        return self._folded

    def add(self, snapshot: Mapping[str, Any]) -> None:
        """Fold one snapshot into the accumulator."""
        for entry in snapshot.get("counters", ()):
            key = _series_key(entry)
            self._counters[key] = (
                self._counters.get(key, 0) + entry["value"]
            )
        for entry in snapshot.get("gauges", ()):
            key = _series_key(entry)
            self._gauges[key] = self._gauges.get(key, 0) + entry["value"]
        for entry in snapshot.get("histograms", ()):
            key = _series_key(entry)
            merged = self._histograms.get(key)
            if merged is None:
                merged = self._histograms[key] = {
                    "count": 0, "total": 0.0, "min": None, "max": None,
                }
            count = entry["count"]
            merged["count"] += count
            merged["total"] += entry["total"]
            if count:
                if merged["min"] is None or entry["min"] < merged["min"]:
                    merged["min"] = entry["min"]
                if merged["max"] is None or entry["max"] > merged["max"]:
                    merged["max"] = entry["max"]
        self._folded += 1

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """The merged snapshot, series in canonical sort order."""
        out = empty_snapshot()
        for key, value in sorted(self._counters.items()):
            out["counters"].append(
                {"name": key[0], "labels": dict(key[1]), "value": value}
            )
        for key, value in sorted(self._gauges.items()):
            out["gauges"].append(
                {"name": key[0], "labels": dict(key[1]), "value": value}
            )
        for key, stats in sorted(self._histograms.items()):
            count = stats["count"]
            out["histograms"].append(
                {
                    "name": key[0],
                    "labels": dict(key[1]),
                    "count": count,
                    "total": stats["total"],
                    "min": stats["min"],
                    "max": stats["max"],
                    "mean": stats["total"] / count if count else 0.0,
                }
            )
        return out


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Merge metric snapshots into one (the n-ary monoid operation).

    Accepts any iterable; an empty one yields the identity snapshot.
    """
    acc = SnapshotAccumulator()
    for snapshot in snapshots:
        acc.add(snapshot)
    return acc.snapshot()
