"""Metric instruments: counters, gauges, histograms with label sets.

Every counting point in the simulated stack publishes into a
:class:`MetricsRegistry` keyed by free-form labels — by convention
``layer`` (where on the packet path), ``direction`` (uplink/downlink),
``bearer`` (EPS bearer id) and ``cause`` (for drops).  The registry is
deliberately tiny and dependency-free: instruments are plain objects,
snapshots are plain JSON-able dicts, and nothing here touches the wall
clock (trace timestamps come from the simulated clock, see
:mod:`repro.telemetry.trace`).

Two write paths share one instrument namespace:

- **Bound handles** (:meth:`MetricsRegistry.bind_counter` and friends) —
  the hot path.  An instrumentation point resolves its label set once,
  at bind time (labels are canonicalized and the lookup key interned);
  every subsequent ``handle.inc()`` is a plain attribute increment on
  the underlying instrument.  The instrument itself materializes on the
  *first write*, not at bind time, so a site that binds but never fires
  leaves no zero-valued series behind — snapshots stay identical to the
  kwarg path's.
- **Kwarg calls** (:meth:`MetricsRegistry.inc` / ``set`` / ``observe``)
  — the compatible slow path for cold or dynamic-label sites.  Repeated
  calls from the same site are served from an intern cache keyed by the
  labels *in call order*, so the canonicalizing sort runs once per
  distinct call shape, and ``inc(n, ue="a", bearer=1)`` and
  ``inc(n, bearer=1, ue="a")`` always land on the same series.

The performance contract lives one level up: when no telemetry session
is active, instrumented components hold ``None`` and never call into
this module (see :mod:`repro.telemetry`), so the no-sink fast path is a
single ``is not None`` check.

>>> registry = MetricsRegistry()
>>> registry.inc("bytes_counted", 1500, layer="gateway", direction="downlink")
>>> registry.value("bytes_counted", layer="gateway", direction="downlink")
1500
>>> handle = registry.bind_counter(
...     "bytes_counted", layer="gateway", direction="downlink"
... )
>>> handle.inc(500)
>>> registry.value("bytes_counted", direction="downlink", layer="gateway")
2000
"""

from __future__ import annotations

import math
from typing import Any, Iterator

Labels = tuple[tuple[str, Any], ...]


def _labels_key(labels: dict[str, Any]) -> Labels:
    """Canonical (sorted) tuple form of a label dict."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (bytes, packets, events)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments are non-negative: {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (buffer depth, settled volume)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = value

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (either sign)."""
        self.value += delta


class Histogram:
    """A power-of-two bucketed distribution of observed values.

    Buckets are ``value <= 2**i`` for ``i`` in a fixed range, which is
    plenty for the quantities we histogram (packet sizes, CDR interval
    volumes, negotiation rounds) without any configuration surface.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    #: Upper bucket exponent: values above 2**30 land in the overflow.
    MAX_EXP = 30

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (self.MAX_EXP + 2)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            index = 0
        else:
            index = min(self.MAX_EXP + 1, max(0, math.ceil(math.log2(value))))
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        """Average of all samples (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0


Instrument = Counter | Gauge | Histogram

_KIND_FACTORY = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class BoundCounter:
    """A site-resolved counter handle: labels canonicalized at bind time.

    The underlying :class:`Counter` materializes in the registry on the
    first :meth:`inc`, keeping snapshots free of never-fired series.
    """

    __slots__ = ("_registry", "_name", "_labels", "_counter")

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: Labels
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._counter: Counter | None = None

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (non-negative) to the bound counter."""
        counter = self._counter
        if counter is None:
            counter = self._counter = self._registry._materialize(
                "counter", self._name, self._labels
            )  # type: ignore[assignment]
        if amount < 0:
            raise ValueError(f"counter increments are non-negative: {amount}")
        counter.value += amount


class BoundGauge:
    """A site-resolved gauge handle (see :class:`BoundCounter`)."""

    __slots__ = ("_registry", "_name", "_labels", "_gauge")

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: Labels
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._gauge: Gauge | None = None

    def _resolve(self) -> Gauge:
        gauge = self._gauge
        if gauge is None:
            gauge = self._gauge = self._registry._materialize(
                "gauge", self._name, self._labels
            )  # type: ignore[assignment]
        return gauge

    def set(self, value: float) -> None:
        """Overwrite the bound gauge with the latest observation."""
        self._resolve().value = value

    def add(self, delta: float) -> None:
        """Move the bound gauge by ``delta`` (either sign)."""
        self._resolve().value += delta


class BoundHistogram:
    """A site-resolved histogram handle (see :class:`BoundCounter`)."""

    __slots__ = ("_registry", "_name", "_labels", "_histogram")

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: Labels
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._histogram: Histogram | None = None

    def observe(self, value: float) -> None:
        """Record one sample on the bound histogram."""
        histogram = self._histogram
        if histogram is None:
            histogram = self._histogram = self._registry._materialize(
                "histogram", self._name, self._labels
            )  # type: ignore[assignment]
        histogram.observe(value)


class RunAccumulator:
    """A burst accumulator feeding one bound counter.

    High-frequency packet elements add contiguous same-outcome byte
    runs here with two plain attribute increments per packet
    (``acc.bytes += size; acc.packets += 1``) and fold the run into the
    bound counter on :meth:`flush` — one counter update per run instead
    of one per packet.  Sums of non-negative integers commute, so the
    flushed totals are exactly the per-packet totals, and a counter is
    only materialized when at least one packet actually crossed the
    site (``packets`` guards zero-byte runs), keeping snapshots
    identical to unaggregated instrumentation.
    """

    __slots__ = ("handle", "bytes", "packets")

    def __init__(self, handle: BoundCounter) -> None:
        self.handle = handle
        self.bytes = 0
        self.packets = 0

    def add(self, size: int) -> None:
        """Accumulate one packet (call sites may inline the two adds)."""
        self.bytes += size
        self.packets += 1

    def flush(self) -> None:
        """Fold the pending run into the bound counter and drain."""
        if self.packets:
            self.handle.inc(self.bytes)
            self.bytes = 0
            self.packets = 0


def flush_all(accumulators: Iterable[RunAccumulator]) -> None:
    """Flush a collection of accumulators (session flush callback)."""
    for accumulator in accumulators:
        accumulator.flush()


class MetricsRegistry:
    """Get-or-create store of instruments keyed by (name, labels).

    The registry is what a telemetry session hands to every counting
    point; its :meth:`snapshot` is what campaign results persist next to
    their cached values.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, str, Labels], Instrument] = {}
        # Intern cache for the kwarg path: call-order label tuples mapped
        # to their (sort-canonicalized) instrument, so the sorting cost
        # is paid once per distinct call shape, not per call.
        self._interned: dict[tuple[str, str, Labels], Instrument] = {}

    # -- instrument accessors ------------------------------------------

    def _materialize(self, kind: str, name: str, labels: Labels) -> Instrument:
        """Get-or-create the instrument for already-canonical labels."""
        key = (kind, name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KIND_FACTORY[kind](name, labels)
            self._instruments[key] = instrument
        return instrument

    def _get(self, kind: str, name: str, labels: dict[str, Any]) -> Instrument:
        key = (kind, name, tuple(labels.items()))
        instrument = self._interned.get(key)
        if instrument is None:
            instrument = self._materialize(kind, name, _labels_key(labels))
            self._interned[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (name, labels), created on first use."""
        return self._get("counter", name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        return self._get("gauge", name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        return self._get("histogram", name, labels)  # type: ignore[return-value]

    # -- bound handles (the hot-path write API) ------------------------

    def bind_counter(self, name: str, **labels: Any) -> BoundCounter:
        """A pre-resolved counter handle for (name, labels).

        Binding canonicalizes the labels once; the returned handle's
        ``inc`` is a plain attribute increment afterwards.  The series
        itself is created on the first increment, not at bind time.
        """
        return BoundCounter(self, name, _labels_key(labels))

    def bind_gauge(self, name: str, **labels: Any) -> BoundGauge:
        """A pre-resolved gauge handle for (name, labels)."""
        return BoundGauge(self, name, _labels_key(labels))

    def bind_histogram(self, name: str, **labels: Any) -> BoundHistogram:
        """A pre-resolved histogram handle for (name, labels)."""
        return BoundHistogram(self, name, _labels_key(labels))

    # -- convenience write paths ---------------------------------------

    def inc(self, name: str, amount: int | float = 1, **labels: Any) -> None:
        """Increment the counter for (name, labels)."""
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge for (name, labels)."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record a histogram sample for (name, labels)."""
        self.histogram(name, **labels).observe(value)

    # -- read side ------------------------------------------------------

    def value(self, name: str, **labels: Any) -> int | float:
        """Current counter value (0 if never incremented)."""
        key = ("counter", name, _labels_key(labels))
        instrument = self._instruments.get(key)
        return instrument.value if instrument is not None else 0  # type: ignore[union-attr]

    def total(self, name: str, **label_filter: Any) -> int | float:
        """Sum of all counters named ``name`` matching the label filter.

        A filter key constrains that label to the given value; labels
        not named in the filter may take any value.
        """
        total: int | float = 0
        for counter in self.iter_counters(name, **label_filter):
            total += counter.value
        return total

    def iter_counters(
        self, name: str, **label_filter: Any
    ) -> Iterator[Counter]:
        """All counters named ``name`` whose labels match the filter."""
        wanted = label_filter.items()
        for (kind, iname, labels), instrument in self._instruments.items():
            if kind != "counter" or iname != name:
                continue
            have = dict(labels)
            if all(have.get(k) == v for k, v in wanted):
                yield instrument  # type: ignore[misc]

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """A plain-dict, JSON-able dump of every instrument."""
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for (kind, name, labels), inst in sorted(
            self._instruments.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
        ):
            entry: dict[str, Any] = {"name": name, "labels": dict(labels)}
            if kind == "histogram":
                hist = inst  # type: Histogram  # noqa: F841
                entry.update(
                    count=inst.count,  # type: ignore[union-attr]
                    total=inst.total,  # type: ignore[union-attr]
                    min=None if inst.count == 0 else inst.min,  # type: ignore[union-attr]
                    max=None if inst.count == 0 else inst.max,  # type: ignore[union-attr]
                    mean=inst.mean,  # type: ignore[union-attr]
                )
            else:
                entry["value"] = inst.value  # type: ignore[union-attr]
            out[kind + "s"].append(entry)
        return out
