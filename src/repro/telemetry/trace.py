"""Structured trace events on the simulated clock.

A trace event is one timestamped fact about the packet path — an outage
starting, a CDR flushing, a COUNTER CHECK answering, a negotiation
settling.  Timestamps always come from the *simulated* clock (the event
loop's ``now``), never the wall clock, so traces are deterministic and
diffable across runs and worker processes.

Events serialize to JSON Lines (one JSON object per line), the format
the CLI's ``--trace`` flag writes:

>>> buffer = TraceBuffer(clock=lambda: 12.5)
>>> event = buffer.emit("gateway", "cdr_emitted", uplink_bytes=100)
>>> event.as_dict()
{'t': 12.5, 'layer': 'gateway', 'event': 'cdr_emitted', 'uplink_bytes': 100}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, structured occurrence on the packet path."""

    time: float
    layer: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form: flat dict with ``t``/``layer``/``event`` first."""
        out: dict[str, Any] = {
            "t": self.time,
            "layer": self.layer,
            "event": self.event,
        }
        out.update(self.fields)
        return out


class TraceBuffer:
    """An in-memory, append-only sink of trace events.

    ``clock`` supplies the simulated time for each event; scenario runs
    bind it to their event loop, so a buffer never needs the loop itself.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.events: list[TraceEvent] = []

    def emit(self, layer: str, event: str, **fields: Any) -> TraceEvent:
        """Append one event stamped with the current simulated time."""
        record = TraceEvent(
            time=self._clock(), layer=layer, event=event, fields=fields
        )
        self.events.append(record)
        return record

    def as_dicts(self) -> list[dict[str, Any]]:
        """All events as JSON-able dicts (what campaign results store)."""
        return [event.as_dict() for event in self.events]


def write_jsonl(events: Iterable[dict[str, Any] | TraceEvent], fh: IO[str]) -> int:
    """Write events to ``fh`` as JSON Lines; returns the line count."""
    count = 0
    for event in events:
        record = event.as_dict() if isinstance(event, TraceEvent) else event
        fh.write(json.dumps(record, sort_keys=False) + "\n")
        count += 1
    return count


def read_jsonl(fh: IO[str]) -> list[dict[str, Any]]:
    """Parse a JSON Lines trace back into dicts (blank lines skipped)."""
    out = []
    for line in fh:
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
