"""Structured trace events on the simulated clock.

A trace event is one timestamped fact about the packet path — an outage
starting, a CDR flushing, a COUNTER CHECK answering, a negotiation
settling.  Timestamps always come from the *simulated* clock (the event
loop's ``now``), never the wall clock, so traces are deterministic and
diffable across runs and worker processes.

Events serialize to JSON Lines (one JSON object per line), the format
the CLI's ``--trace`` flag writes:

>>> buffer = TraceBuffer(clock=lambda: 12.5)
>>> event = buffer.emit("gateway", "cdr_emitted", uplink_bytes=100)
>>> event.as_dict()
{'t': 12.5, 'layer': 'gateway', 'event': 'cdr_emitted', 'uplink_bytes': 100}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterable, Mapping


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, structured occurrence on the packet path."""

    time: float
    layer: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able form: flat dict with ``t``/``layer``/``event`` first."""
        out: dict[str, Any] = {
            "t": self.time,
            "layer": self.layer,
            "event": self.event,
        }
        out.update(self.fields)
        return out


class TraceBuffer:
    """An in-memory, append-only sink of trace events.

    ``clock`` supplies the simulated time for each event; scenario runs
    bind it to their event loop, so a buffer never needs the loop itself.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.events: list[TraceEvent] = []

    def emit(self, layer: str, event: str, **fields: Any) -> TraceEvent:
        """Append one event stamped with the current simulated time."""
        record = TraceEvent(
            time=self._clock(), layer=layer, event=event, fields=fields
        )
        self.events.append(record)
        return record

    def as_dicts(self) -> list[dict[str, Any]]:
        """All events as JSON-able dicts (what campaign results store)."""
        return [event.as_dict() for event in self.events]


class TraceSink:
    """A buffered, line-atomic JSONL trace sink.

    Events accumulate in a bounded in-memory buffer and are
    batch-serialized on flush: the whole batch is rendered to complete
    ``\\n``-terminated JSON lines *before* a single byte reaches the
    file, and written with one ``write`` call.  A crash or worker
    failure mid-run can therefore never leave a truncated JSONL line —
    every event is either fully on disk or not on disk at all.

    Use it as a context manager; the buffer is flushed and the file
    closed on the way out **including exception paths**:

    >>> import io
    >>> fh = io.StringIO()
    >>> with TraceSink(fh, clock=lambda: 1.0) as sink:
    ...     sink.emit("gateway", "cdr_emitted", uplink_bytes=10)
    >>> fh.getvalue()
    '{"t": 1.0, "layer": "gateway", "event": "cdr_emitted", "uplink_bytes": 10}\\n'

    Parameters
    ----------
    target:
        A filesystem path (the sink opens and owns the file, closing it
        on :meth:`close`) or an open text file object (borrowed: flushed
        but left open for the caller).
    clock:
        Simulated-clock callable stamping each :meth:`emit`; a
        :class:`~repro.telemetry.Telemetry` session binds it for you.
    buffer_events:
        Flush automatically once this many events are pending.
    sample:
        Event names subject to 1-in-N sampling — use this for
        per-packet events whose exact counts already live in the
        metrics registry.  Events not named here are recorded exactly
        (byte-accounting events must be).
    sample_every:
        Keep one out of every N occurrences of each sampled event name
        (the first of each N is kept; 1 keeps everything).
    """

    def __init__(
        self,
        target: str | os.PathLike | IO[str],
        clock: Callable[[], float] | None = None,
        buffer_events: int = 1024,
        sample: Iterable[str] = (),
        sample_every: int = 1,
    ) -> None:
        if buffer_events < 1:
            raise ValueError(f"buffer_events must be >= 1: {buffer_events}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        if hasattr(target, "write"):
            self._fh: IO[str] | None = target  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        self.clock = clock
        self.buffer_events = int(buffer_events)
        self.sample_every = int(sample_every)
        self._sampled_names = frozenset(sample)
        self._sample_seen: dict[str, int] = {}
        self._pending: list[dict[str, Any]] = []
        self.events_seen = 0
        self.events_dropped = 0
        self.lines_written = 0

    # -- write side -----------------------------------------------------

    def emit(self, layer: str, event: str, **fields: Any) -> None:
        """Buffer one event stamped with the current simulated time."""
        self.events_seen += 1
        if event in self._sampled_names and self.sample_every > 1:
            seen = self._sample_seen.get(event, 0)
            self._sample_seen[event] = seen + 1
            if seen % self.sample_every:
                self.events_dropped += 1
                return
        record: dict[str, Any] = {
            "t": self.clock() if self.clock is not None else 0.0,
            "layer": layer,
            "event": event,
        }
        record.update(fields)
        self._append(record)

    def write(self, events: Iterable[Mapping[str, Any] | TraceEvent]) -> int:
        """Buffer already-built events (dicts or :class:`TraceEvent`).

        Sampling does not apply — this is the batch path the CLI uses
        to persist per-scenario traces exactly.  Returns the count.
        """
        count = 0
        for event in events:
            record = (
                event.as_dict()
                if isinstance(event, TraceEvent)
                else dict(event)
            )
            self._append(record)
            count += 1
        return count

    def _append(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError("trace sink is closed")
        self._pending.append(record)
        if len(self._pending) >= self.buffer_events:
            self.flush()

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Batch-serialize pending events and write them as one block."""
        if not self._pending or self._fh is None:
            return
        block = "".join(
            json.dumps(record, sort_keys=False) + "\n"
            for record in self._pending
        )
        self.lines_written += len(self._pending)
        self._pending.clear()
        self._fh.write(block)
        self._fh.flush()

    def close(self) -> None:
        """Flush and (when the sink opened the file) close it."""
        if self._fh is None:
            return
        try:
            self.flush()
        finally:
            fh, owns = self._fh, self._owns_fh
            self._fh = None
            if owns:
                fh.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_jsonl(events: Iterable[dict[str, Any] | TraceEvent], fh: IO[str]) -> int:
    """Write events to ``fh`` as JSON Lines; returns the line count."""
    count = 0
    for event in events:
        record = event.as_dict() if isinstance(event, TraceEvent) else event
        fh.write(json.dumps(record, sort_keys=False) + "\n")
        count += 1
    return count


def read_jsonl(fh: IO[str]) -> list[dict[str, Any]]:
    """Parse a JSON Lines trace back into dicts (blank lines skipped)."""
    out = []
    for line in fh:
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
