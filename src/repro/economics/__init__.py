"""Economic deployment incentives (§8).

The paper argues both sides *want* TLC: the edge deploys it to block
unbounded over-charging, and an operator deploys it because "an operator
with TLC will gain the unique competitive edge (i.e., trusted charging)
over other operators without TLC, and attract more users (revenue)" —
especially in the prepaid/MVNO segment where monthly churn reaches 25%.

:mod:`repro.economics.adoption` turns that argument into a churn-driven
market-share model so the incentive can be measured instead of asserted.
"""

from repro.economics.adoption import (
    AdoptionModel,
    MarketState,
    OperatorProfile,
)

__all__ = ["AdoptionModel", "MarketState", "OperatorProfile"]
