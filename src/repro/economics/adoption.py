"""A churn-driven market model of TLC adoption.

Users (edge vendors) sit on operators.  Each month a fraction of every
operator's users *shops around* (the churn propensity — up to 25%/month
for prepaid/MVNO, §8).  A shopping user leaves its operator with a
probability that grows with the over-billing it experiences there
(operators running TLC expose only the record error; legacy operators
expose the full charging gap, plus any selfish inflation).  Leavers pick
a destination weighted by trustworthiness = 1 / (1 + overbilling).

The dynamics are deterministic expected-value difference equations, so
tests are exact; the qualitative §8 claim to verify is that deploying
TLC strictly grows steady-state share whenever rivals over-bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's charging behaviour as its users experience it.

    ``overbilling_ratio`` is the expected fraction by which bills exceed
    the fair volume: a legacy operator's loss-induced gap (e.g. 0.08
    under congestion), plus selfish inflation if any; a TLC operator's
    residual record error (~0.02).
    """

    name: str
    deploys_tlc: bool
    overbilling_ratio: float

    def __post_init__(self) -> None:
        if self.overbilling_ratio < 0:
            raise ValueError(
                f"overbilling ratio must be >= 0: {self.overbilling_ratio}"
            )

    @property
    def trust_weight(self) -> float:
        """Attractiveness to shopping users."""
        return 1.0 / (1.0 + self.overbilling_ratio)


@dataclass
class MarketState:
    """Market shares by operator name (fractions summing to 1)."""

    shares: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"shares must sum to 1, got {total}")
        if any(share < 0 for share in self.shares.values()):
            raise ValueError("shares must be non-negative")

    def share_of(self, name: str) -> float:
        """One operator's current share."""
        return self.shares[name]


class AdoptionModel:
    """Expected-value churn dynamics over a set of operators."""

    def __init__(
        self,
        operators: list[OperatorProfile],
        churn_propensity: float = 0.25,
        billing_sensitivity: float = 4.0,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        names = [op.name for op in operators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate operator names: {names}")
        if not 0.0 <= churn_propensity <= 1.0:
            raise ValueError(
                f"churn propensity out of [0,1]: {churn_propensity}"
            )
        if billing_sensitivity < 0:
            raise ValueError(
                f"billing sensitivity must be >= 0: {billing_sensitivity}"
            )
        self.operators = {op.name: op for op in operators}
        self.churn_propensity = float(churn_propensity)
        self.billing_sensitivity = float(billing_sensitivity)

    def uniform_start(self) -> MarketState:
        """Everyone starts with equal share."""
        n = len(self.operators)
        return MarketState({name: 1.0 / n for name in self.operators})

    def leave_probability(self, operator: OperatorProfile) -> float:
        """P(a shopping user leaves), rising with over-billing."""
        pressure = self.billing_sensitivity * operator.overbilling_ratio
        return self.churn_propensity * min(1.0, pressure)

    def step(self, state: MarketState) -> MarketState:
        """One month of expected churn."""
        leavers = {
            name: state.share_of(name)
            * self.leave_probability(self.operators[name])
            for name in self.operators
        }
        pool = sum(leavers.values())
        weights = {
            name: op.trust_weight for name, op in self.operators.items()
        }
        weight_total = sum(weights.values())
        new_shares = {}
        for name in self.operators:
            inflow = pool * weights[name] / weight_total
            new_shares[name] = (
                state.share_of(name) - leavers[name] + inflow
            )
        return MarketState(new_shares)

    def run(self, months: int, state: MarketState | None = None) -> MarketState:
        """Iterate the dynamics for ``months`` steps."""
        if months < 0:
            raise ValueError(f"negative horizon: {months}")
        state = state or self.uniform_start()
        for _ in range(months):
            state = self.step(state)
        return state

    def steady_state(
        self, tolerance: float = 1e-10, max_months: int = 10_000
    ) -> MarketState:
        """Iterate until shares stop moving."""
        state = self.uniform_start()
        for _ in range(max_months):
            nxt = self.step(state)
            drift = max(
                abs(nxt.share_of(n) - state.share_of(n))
                for n in self.operators
            )
            state = nxt
            if drift < tolerance:
                break
        return state
