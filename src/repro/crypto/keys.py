"""RSA key objects and their serialization.

Keys are plain dataclasses with integer fields.  Serialization is a compact
deterministic JSON form (hex-encoded integers) — enough to publish a public
key to a verifier, persist a negotiation transcript, or measure message
sizes for the Figure 17 reproduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass


def _int_byte_len(n: int) -> int:
    return (n.bit_length() + 7) // 8


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes (signature length)."""
        return _int_byte_len(self.n)

    def to_json(self) -> str:
        """Serialize to a deterministic JSON string."""
        return json.dumps(
            {"kty": "RSA", "n": hex(self.n), "e": hex(self.e)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, data: str) -> "PublicKey":
        """Parse a key serialized with :meth:`to_json`."""
        obj = json.loads(data)
        if obj.get("kty") != "RSA":
            raise ValueError(f"not an RSA public key: {obj.get('kty')!r}")
        return cls(n=int(obj["n"], 16), e=int(obj["e"], 16))

    def fingerprint(self) -> str:
        """Short stable identifier for logs and PoC records."""
        import hashlib

        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key with CRT components for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> PublicKey:
        """The matching public key."""
        return PublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes (signature length)."""
        return _int_byte_len(self.n)

    def to_json(self) -> str:
        """Serialize to JSON (test/persistence use only; keys are secret)."""
        return json.dumps(
            {
                "kty": "RSA",
                "n": hex(self.n),
                "e": hex(self.e),
                "d": hex(self.d),
                "p": hex(self.p),
                "q": hex(self.q),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, data: str) -> "PrivateKey":
        """Parse a key serialized with :meth:`to_json`."""
        obj = json.loads(data)
        if obj.get("kty") != "RSA":
            raise ValueError(f"not an RSA private key: {obj.get('kty')!r}")
        return cls(
            n=int(obj["n"], 16),
            e=int(obj["e"], 16),
            d=int(obj["d"], 16),
            p=int(obj["p"], 16),
            q=int(obj["q"], 16),
        )


@dataclass(frozen=True)
class KeyPair:
    """A private key together with its public half."""

    private: PrivateKey
    public: PublicKey
