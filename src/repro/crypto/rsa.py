"""RSA key generation and the raw modular-exponentiation primitives.

The TLC paper uses RSA-1024; key size is a parameter here so the Figure 17
ablation can sweep it.  Signing uses the Chinese Remainder Theorem for the
usual ~4x speedup, which matters when the verifier benchmark pushes through
hundreds of thousands of PoCs.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.primes import generate_prime

DEFAULT_KEY_BITS = 1024
DEFAULT_PUBLIC_EXPONENT = 65537


def generate_keypair(
    bits: int = DEFAULT_KEY_BITS,
    rng: random.Random | None = None,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Parameters
    ----------
    bits:
        Modulus size; must be even and at least 256 (toy sizes are allowed
        so unit tests stay fast, but production use should keep >= 1024).
    rng:
        Seeded source of randomness; defaults to a fresh SystemRandom-free
        ``random.Random()`` (tests should always pass one explicitly).
    public_exponent:
        The public exponent ``e``; 65537 by default.
    """
    if bits % 2 != 0:
        raise ValueError(f"key size must be even, got {bits}")
    if bits < 256:
        raise ValueError(f"key size too small: {bits} bits (minimum 256)")
    rng = rng or random.Random()

    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % public_exponent == 0:
            continue
        d = pow(public_exponent, -1, phi)
        private = PrivateKey(n=n, e=public_exponent, d=d, p=p, q=q)
        return KeyPair(private=private, public=private.public)


@lru_cache(maxsize=64)
def keypair_for_seed(
    seed: int,
    bits: int = DEFAULT_KEY_BITS,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> KeyPair:
    """The deterministic key pair for ``(seed, bits)``.

    The canonical way a scenario obtains its RSA material: the key is a
    pure function of the seed, so repeated calls return identical keys.
    The result is cached process-wide — campaigns re-running scenarios
    with the same seeds pay for key generation once, not per scenario
    (keygen dominates small negotiation runs otherwise).
    """
    return generate_keypair(
        bits, random.Random(seed), public_exponent=public_exponent
    )


@lru_cache(maxsize=128)
def _crt_params(key: PrivateKey) -> tuple[int, int, int]:
    """CRT exponents and coefficient ``(dp, dq, q_inv)`` for ``key``.

    Pure functions of the (frozen, hashable) key; deriving them per
    signature wastes a modular inversion on every sign.
    """
    return (
        key.d % (key.p - 1),
        key.d % (key.q - 1),
        pow(key.q, -1, key.p),
    )


def rsa_private_op(key: PrivateKey, message: int) -> int:
    """Apply the private-key permutation ``m^d mod n`` using CRT."""
    if not 0 <= message < key.n:
        raise ValueError("message representative out of range [0, n)")
    dp, dq, q_inv = _crt_params(key)
    m1 = pow(message, dp, key.p)
    m2 = pow(message, dq, key.q)
    h = (q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


def rsa_public_op(key: PublicKey, signature: int) -> int:
    """Apply the public-key permutation ``s^e mod n``."""
    if not 0 <= signature < key.n:
        raise ValueError("signature representative out of range [0, n)")
    return pow(signature, key.e, key.n)
