"""Primality testing and prime generation for RSA key setup.

Miller–Rabin with a deterministic witness set for small inputs and random
witnesses (from a caller-supplied ``random.Random``) for large ones.  The
probabilistic error after 40 rounds is below 2**-80, far beyond what the
charging simulation needs.
"""

from __future__ import annotations

import random

# Deterministic Miller-Rabin witness set: correct for all n < 3.3 * 10**24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime' for witness a."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(
    n: int, rng: random.Random | None = None, rounds: int = 40
) -> bool:
    """Return True if ``n`` is (probably) prime.

    Deterministic for ``n < 3.3e24``; Miller-Rabin with ``rounds`` random
    witnesses beyond that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(0xC0FFEE)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return all(
        _miller_rabin_round(n, a % n or 2, d, r)
        for a in witnesses
        if a % n != 0
    )


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    always has exactly ``2 * bits`` bits (standard RSA practice).
    """
    if bits < 8:
        raise ValueError(f"prime size too small for RSA: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
