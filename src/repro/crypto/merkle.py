"""Merkle-tree batch signatures: one RSA operation attests N payloads.

The paper's public verifier (§5.3.4) is throughput-bound by RSA: checking
N independently signed records costs N public-key operations.  When one
party attests a *batch* of its own records — e.g. an operator submitting
a charging cycle's worth of CDR claims for audit — the signatures can be
amortized: sign the SHA-256 Merkle root of the payloads once, and let the
verifier check one RSA signature plus N cheap hash-path recomputations.

The tree is the standard binary construction:

- leaf hash:  ``SHA-256(0x00 || payload)``
- inner hash: ``SHA-256(0x01 || left || right)``

with an odd node promoted unchanged to the next level (Bitcoin-style
duplication is avoided because it admits CVE-2012-2459-like ambiguity).
Domain-separating leaves from inner nodes forecloses second-preimage
splices of an inner node as a forged leaf.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.signing import sign, verify

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(payload: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + payload).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def merkle_root(payloads: Sequence[bytes]) -> bytes:
    """The Merkle root over ``payloads`` (order-sensitive)."""
    if not payloads:
        raise ValueError("cannot build a Merkle tree over zero payloads")
    level = [_leaf_hash(p) for p in payloads]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node_hash(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def merkle_proof(payloads: Sequence[bytes], index: int) -> tuple[tuple[bool, bytes], ...]:
    """Inclusion proof for ``payloads[index]``.

    Returns ``(sibling_is_right, sibling_hash)`` pairs from leaf to root;
    levels where the node is promoted without a sibling contribute no
    entry.
    """
    if not 0 <= index < len(payloads):
        raise IndexError(f"leaf index {index} out of range")
    level = [_leaf_hash(p) for p in payloads]
    proof: list[tuple[bool, bytes]] = []
    pos = index
    while len(level) > 1:
        sibling = pos ^ 1
        if sibling < len(level):
            proof.append((sibling > pos, level[sibling]))
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node_hash(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        pos //= 2
    return tuple(proof)


def verify_merkle_proof(
    payload: bytes, proof: Sequence[tuple[bool, bytes]], root: bytes
) -> bool:
    """Check that ``payload`` is a leaf of the tree with ``root``."""
    node = _leaf_hash(payload)
    for sibling_is_right, sibling in proof:
        if sibling_is_right:
            node = _node_hash(node, sibling)
        else:
            node = _node_hash(sibling, node)
    return node == root


@dataclass(frozen=True)
class BatchSignature:
    """One RSA signature over the Merkle root of ``count`` payloads."""

    root: bytes
    signature: bytes
    count: int


def sign_batch(key: PrivateKey, payloads: Sequence[bytes]) -> BatchSignature:
    """Sign the Merkle root of ``payloads`` — one RSA op for the batch."""
    root = merkle_root(payloads)
    return BatchSignature(
        root=root, signature=sign(key, root), count=len(payloads)
    )


def verify_batch(
    key: PublicKey,
    payloads: Sequence[bytes],
    batch: BatchSignature,
) -> bool:
    """Check every payload against a batch signature.

    Recomputes the root from the payloads (N hashes) and verifies the
    single RSA signature over it: the whole batch costs one public-key
    operation instead of N.
    """
    if len(payloads) != batch.count:
        return False
    if merkle_root(payloads) != batch.root:
        return False
    return verify(key, batch.root, batch.signature)
