"""Cryptographic substrate for Proof-of-Charging.

The paper signs CDR/CDA/PoC messages with RSA-1024 via ``java.security``.
No crypto library is assumed here, so this package implements the whole
stack from scratch:

- :mod:`repro.crypto.primes` — Miller–Rabin primality and prime generation,
- :mod:`repro.crypto.rsa` — key generation and the raw RSA permutation,
- :mod:`repro.crypto.signing` — PKCS#1 v1.5 signatures over SHA-256,
- :mod:`repro.crypto.merkle` — Merkle-tree batch signatures (one RSA op
  attests N payloads),
- :mod:`repro.crypto.nonces` — replay-protection nonces and sequence numbers.

Only signing and verification are used by the TLC protocol: the records are
public, so confidentiality is out of scope (as in the paper).
"""

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.merkle import (
    BatchSignature,
    merkle_proof,
    merkle_root,
    sign_batch,
    verify_batch,
    verify_merkle_proof,
)
from repro.crypto.nonces import NonceFactory, SequenceCounter
from repro.crypto.rsa import generate_keypair, keypair_for_seed
from repro.crypto.signing import (
    SignatureError,
    cached_verify,
    sign,
    verify,
)

__all__ = [
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "BatchSignature",
    "merkle_proof",
    "merkle_root",
    "sign_batch",
    "verify_batch",
    "verify_merkle_proof",
    "NonceFactory",
    "SequenceCounter",
    "generate_keypair",
    "keypair_for_seed",
    "SignatureError",
    "cached_verify",
    "sign",
    "verify",
]
