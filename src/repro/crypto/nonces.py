"""Nonces and sequence numbers for replay protection.

TLC messages carry a per-party nonce ``n_e``/``n_o`` and a sequence number
``s_e``/``s_o`` (Table 1 of the paper); Algorithm 2 rejects PoCs whose
nonces or sequence numbers are inconsistent, which defeats replays of old
negotiation transcripts.
"""

from __future__ import annotations

import random


class NonceFactory:
    """Generates fixed-width random nonces from a seeded stream."""

    def __init__(self, rng: random.Random, width_bytes: int = 16) -> None:
        if width_bytes < 8:
            raise ValueError(f"nonce too short to resist replay: {width_bytes}")
        self._rng = rng
        self.width_bytes = width_bytes
        self._issued: set[bytes] = set()

    def fresh(self) -> bytes:
        """Return a nonce never issued by this factory before."""
        while True:
            nonce = self._rng.getrandbits(self.width_bytes * 8).to_bytes(
                self.width_bytes, "big"
            )
            if nonce not in self._issued:
                self._issued.add(nonce)
                return nonce


class SequenceCounter:
    """Monotone message sequence number, incremented on every send."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"sequence numbers are non-negative: {start}")
        self._value = int(start)

    @property
    def current(self) -> int:
        """The last value handed out (``start - 1`` before first use)."""
        return self._value - 1

    def next(self) -> int:
        """Return the next sequence number and advance."""
        value = self._value
        self._value += 1
        return value
