"""PKCS#1 v1.5 signatures over SHA-256.

This is the EMSA-PKCS1-v1_5 encoding from RFC 8017 §9.2: a DER-wrapped
SHA-256 digest padded with ``0x00 0x01 FF.. 0x00``.  It is what
``java.security``'s ``SHA256withRSA`` (used by the paper's prototype)
produces, so signature sizes match the paper's message-size table.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.rsa import rsa_private_op, rsa_public_op

# DER prefix for a SHA-256 DigestInfo (RFC 8017, Appendix A.2.4).
_SHA256_DER_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


class SignatureError(ValueError):
    """Raised when a signature fails verification or cannot be produced."""


@lru_cache(maxsize=4096)
def _emsa_pkcs1_v15_encode(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) into ``em_len`` bytes.

    Cached: the protocol signs a payload and the peer immediately
    verifies the identical bytes, so the common sign-then-verify pattern
    hashes and pads each message once.  The encoding is a pure function
    of its arguments, so caching cannot change any signature.
    """
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DER_PREFIX + digest
    if em_len < len(t) + 11:
        raise SignatureError(
            f"key too small for SHA-256 PKCS#1 v1.5: need at least "
            f"{len(t) + 11} bytes, modulus gives {em_len}"
        )
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign(key: PrivateKey, message: bytes) -> bytes:
    """Sign ``message`` with ``key``; returns a modulus-length signature."""
    em_len = key.byte_length
    em = _emsa_pkcs1_v15_encode(message, em_len)
    m = int.from_bytes(em, "big")
    s = rsa_private_op(key, m)
    return s.to_bytes(em_len, "big")


def verify(key: PublicKey, message: bytes, signature: bytes) -> bool:
    """Return True iff ``signature`` is a valid signature on ``message``.

    Verification is strict (full encoding comparison), which forecloses
    Bleichenbacher-style forgery against lax parsers.
    """
    if len(signature) != key.byte_length:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    m = rsa_public_op(key, s)
    recovered = m.to_bytes(key.byte_length, "big")
    try:
        expected = _emsa_pkcs1_v15_encode(message, key.byte_length)
    except SignatureError:
        return False
    return recovered == expected


@lru_cache(maxsize=4096)
def cached_verify(key: PublicKey, message: bytes, signature: bytes) -> bool:
    """Memoized :func:`verify` for repeated ``(key, message, signature)``.

    The public verifier re-checks the same embedded CDR/CDA layers when
    many PoCs share transcript prefixes (and campaign grids re-verify
    identical proofs across parameter points); the RSA public op for an
    already-seen triple is pure, so its verdict can be served from cache.
    Use plain :func:`verify` when inputs are unbounded or adversarial.
    """
    return verify(key, message, signature)


def require_valid(key: PublicKey, message: bytes, signature: bytes) -> None:
    """Verify and raise :class:`SignatureError` on failure."""
    if not verify(key, message, signature):
        raise SignatureError("signature verification failed")
