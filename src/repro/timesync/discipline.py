"""Clock discipline under step/skew faults, and its recovery.

:class:`~repro.timesync.ntp.NtpModel` draws the *residual* offset of a
well-behaved NTP client.  Production clocks also fail abruptly: a VM
migration or a misbehaving upstream stratum *steps* the clock by whole
seconds, and a thermal event changes the oscillator *skew* until the
next synchronization round pulls the clock back.  :class:`DisciplinedClock`
models both as piecewise-constant perturbations on top of the residual
offset, with an explicit recovery action (:meth:`resync`) that the fault
injector schedules just as it schedules the fault itself.

The model is deliberately a pure function of (residual, fault segments):
``offset_at(t)`` can be evaluated for any reference time without driving
an event loop, which is what keeps fault scenarios byte-identical across
runs — the charging-cycle boundary under a clock fault is simply
``boundary - offset_at(boundary)`` (same first-order convention as the
fault-free scenario path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ClockFaultSegment:
    """One step/skew perturbation active on ``[start, end)``.

    ``end`` is ``inf`` until a resync closes the segment.
    """

    start: float
    end: float
    step: float        # seconds added to the offset
    skew_ppm: float    # extra drift while the segment is active

    def offset_at(self, t: float) -> float:
        """This segment's contribution to the offset at reference ``t``.

        Zero after ``end``: the resync that closed the segment stepped
        the clock back, removing the perturbation.
        """
        if t < self.start or t >= self.end:
            return 0.0
        return self.step + self.skew_ppm * 1e-6 * (t - self.start)


class DisciplinedClock:
    """A party clock: NTP residual offset plus injectable fault segments.

    Parameters
    ----------
    residual_offset:
        The post-sync offset an :class:`~repro.timesync.ntp.NtpModel`
        drew for this party (seconds, signed).
    """

    def __init__(self, residual_offset: float = 0.0) -> None:
        self.residual_offset = float(residual_offset)
        self._segments: list[ClockFaultSegment] = []
        self.steps_injected = 0
        self.resyncs = 0

    def step(
        self, at: float, seconds: float, skew_ppm: float = 0.0
    ) -> ClockFaultSegment:
        """Inject a step (and optional skew) fault starting at ``at``.

        The perturbation persists until :meth:`resync` closes it — an
        unsynchronized clock does not heal itself.
        """
        segment = ClockFaultSegment(
            start=float(at), end=float("inf"),
            step=float(seconds), skew_ppm=float(skew_ppm),
        )
        self._segments.append(segment)
        self.steps_injected += 1
        return segment

    def resync(self, at: float) -> float:
        """NTP re-disciplines the clock at ``at``: close open segments.

        Returns the total perturbation removed (the correction NTP
        applied), which recovery telemetry records.
        """
        corrected = 0.0
        closed: list[ClockFaultSegment] = []
        for segment in self._segments:
            if segment.end > at >= segment.start:
                corrected += segment.offset_at(at)
                closed.append(segment)
        for segment in closed:
            self._segments.remove(segment)
            self._segments.append(
                ClockFaultSegment(
                    start=segment.start, end=float(at),
                    step=segment.step, skew_ppm=segment.skew_ppm,
                )
            )
        self.resyncs += 1
        return corrected

    def offset_at(self, t: float) -> float:
        """Total clock offset (residual + active faults) at reference ``t``."""
        return self.residual_offset + sum(
            segment.offset_at(t) for segment in self._segments
        )

    def boundary_in_reference_time(self, boundary: float) -> float:
        """When this party actually snapshots a cycle ``boundary``.

        Same first-order convention as the fault-free scenario: a clock
        running ahead by ``offset`` acts ``offset`` seconds early.
        """
        return boundary - self.offset_at(boundary)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able summary (for fault-scenario result extras)."""
        return {
            "residual_offset": self.residual_offset,
            "steps_injected": self.steps_injected,
            "resyncs": self.resyncs,
        }
