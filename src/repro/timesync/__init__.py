"""Time synchronization between the edge vendor and the operator.

TLC requires both parties to agree on the charging cycle boundaries,
"achievable via NTP protocol" (§4).  Residual sync error makes the two
parties snapshot their counters at slightly different true times, which is
the dominant source of the record errors in Figure 18.
"""

from repro.timesync.discipline import ClockFaultSegment, DisciplinedClock
from repro.timesync.ntp import NtpModel, SyncedParty

__all__ = [
    "ClockFaultSegment",
    "DisciplinedClock",
    "NtpModel",
    "SyncedParty",
]
