"""An NTP-flavoured clock discipline model.

Real NTP leaves a residual offset of a few milliseconds over the WAN (and
sub-millisecond on a LAN); unsynchronized device clocks drift by seconds
per day.  :class:`NtpModel` produces per-party residual offsets from a
seeded stream, and :class:`SyncedParty` bundles a skewed clock with the
boundary-snapshot behaviour experiments need: the party acts when *its*
clock reaches the boundary, i.e. at reference time ``boundary - offset``
(to first order).
"""

from __future__ import annotations

import random

from repro.sim.clock import Clock, SkewedClock


class NtpModel:
    """Draws residual clock offsets for synchronized (or not) parties.

    Parameters
    ----------
    rng:
        Seeded randomness.
    residual_std:
        Standard deviation of the post-sync offset, seconds.  Paper-scale
        values: ~0.005-0.05 s for NTP over the LTE link; several seconds
        when sync is disabled.
    """

    def __init__(self, rng: random.Random, residual_std: float = 0.02) -> None:
        if residual_std < 0:
            raise ValueError(f"negative residual std: {residual_std}")
        self.rng = rng
        self.residual_std = float(residual_std)

    def residual_offset(self) -> float:
        """One party's post-sync clock offset (seconds, signed)."""
        return self.rng.gauss(0.0, self.residual_std)

    def synced_party(
        self, name: str, reference: Clock, drift_ppm: float = 0.0
    ) -> "SyncedParty":
        """Create a party with a freshly disciplined clock."""
        clock = SkewedClock(
            reference, offset=self.residual_offset(), drift_ppm=drift_ppm
        )
        return SyncedParty(name=name, clock=clock)


class SyncedParty:
    """A named party observing time through its own (skewed) clock."""

    def __init__(self, name: str, clock: SkewedClock) -> None:
        self.name = name
        self.clock = clock

    def local_boundary_in_reference_time(self, boundary: float) -> float:
        """When (reference time) this party believes ``boundary`` occurs.

        The party acts when its local clock shows ``boundary``; a party
        running ahead (positive offset) therefore acts early.
        """
        return self.clock.to_reference(boundary)

    def snapshot_error(self, boundary: float) -> float:
        """Signed seconds between the party's snapshot and the boundary."""
        return self.local_boundary_in_reference_time(boundary) - boundary
