"""Edge application workloads (§2.2 of the paper).

Synthetic generators calibrated to the paper's measured averages:

=====================  ==========  =====  =========  ====
Workload               Bitrate     FPS    Direction  QCI
=====================  ==========  =====  =========  ====
WebCam over RTSP       0.77 Mbps   30     uplink     9
WebCam over legacy UDP 1.73 Mbps   30     uplink     9
VRidge over GVSP       9.0 Mbps    60     downlink   9
King-of-Glory gaming   0.02 Mbps   30     downlink   7
=====================  ==========  =====  =========  ====

plus iperf-style UDP background traffic for the congestion sweeps, and a
trace record/replay facility standing in for the paper's tcpdump replays.
"""

from repro.apps.background import IperfUdpWorkload
from repro.apps.base import FrameModel, Workload
from repro.apps.gaming import GamingWorkload
from repro.apps.traces import PacketTrace, TraceReplayWorkload
from repro.apps.vr import VrGvspWorkload
from repro.apps.webcam import WebcamRtspWorkload, WebcamUdpWorkload

__all__ = [
    "IperfUdpWorkload",
    "FrameModel",
    "Workload",
    "GamingWorkload",
    "PacketTrace",
    "TraceReplayWorkload",
    "VrGvspWorkload",
    "WebcamRtspWorkload",
    "WebcamUdpWorkload",
]
