"""Workload base: frame models, packetization, and the send loop.

Video-style workloads generate *frames* on a fixed cadence; each frame is
packetized into MTU-sized UDP packets and handed to a send function (the
scenario wires that to the uplink or downlink entry of the simulated LTE
network).  Frame sizes follow a lognormal around the codec's per-frame
budget with periodic intra-frame (I-frame) spikes, which reproduces the
bursty loss exposure of real H.264/GVSP streams.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.net.block import PacketBlock
from repro.net.interval import IntervalFlow, stochastic_round
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

SendFn = Callable[[Packet], object]

MTU_PAYLOAD = 1400  # bytes of app payload per packet
PACKET_OVERHEAD = 40  # IP + UDP + RTP-ish headers


@dataclass(frozen=True)
class FrameModel:
    """Statistical model of a frame stream.

    Attributes
    ----------
    bitrate_bps:
        Long-run average bitrate (application bytes).
    fps:
        Frames per second.
    iframe_interval:
        Every n-th frame is an I-frame (0 disables the GOP structure).
    iframe_scale:
        I-frame size relative to the average frame.
    jitter_sigma:
        Lognormal sigma of per-frame size variation.
    """

    bitrate_bps: float
    fps: float
    iframe_interval: int = 30
    iframe_scale: float = 4.0
    jitter_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0 or self.fps <= 0:
            raise ValueError("bitrate and fps must be positive")
        if self.iframe_interval < 0:
            raise ValueError("iframe interval must be >= 0")
        # The lognormal location depends only on model constants, so the
        # two possible values (I-frame / P-frame) are computed once here
        # instead of re-deriving scale and log per frame on the cadence
        # hot path.  P-frames are scaled down so the GOP average stays
        # on budget.
        mean = self.mean_frame_bytes
        if self.iframe_interval > 0:
            n = self.iframe_interval
            p_scale = (n - self.iframe_scale) / (n - 1) if n > 1 else 1.0
            p_scale = max(p_scale, 0.1)
            mu_iframe = math.log(max(mean * self.iframe_scale, 1.0))
            mu_pframe = math.log(max(mean * p_scale, 1.0))
        else:
            mu_iframe = mu_pframe = math.log(max(mean, 1.0))
        object.__setattr__(self, "_mu_iframe", mu_iframe)
        object.__setattr__(self, "_mu_pframe", mu_pframe)

    @property
    def mean_frame_bytes(self) -> float:
        """Average frame size implied by bitrate and fps."""
        return self.bitrate_bps / 8.0 / self.fps

    def expected_frame_bytes(self, iframe: bool) -> float:
        """E[frame payload] of one frame type under the lognormal model.

        ``exp(μ + σ²/2)`` — the closed form analytic advancement sums
        per frame instead of drawing per frame.  The ``max(1, int(·))``
        clipping of :meth:`frame_size` shifts the true mean by well
        under a byte at realistic frame sizes; that residue is part of
        the documented analytic-vs-fluid tolerance, not of this value.
        """
        mu = self._mu_iframe if iframe else self._mu_pframe
        return math.exp(mu + self.jitter_sigma**2 / 2.0)

    def frame_size(self, frame_index: int, rng: random.Random) -> int:
        """Draw one frame's size in bytes."""
        interval = self.iframe_interval
        mu = (
            self._mu_iframe
            if interval > 0 and frame_index % interval == 0
            else self._mu_pframe
        )
        size = rng.lognormvariate(mu, self.jitter_sigma)
        return max(1, int(size))


def packetize(frame_bytes: int, mtu_payload: int = MTU_PAYLOAD) -> list[int]:
    """Split a frame into on-the-wire packet sizes (overhead included)."""
    if frame_bytes <= 0:
        raise ValueError(f"frame must have positive size: {frame_bytes}")
    sizes = []
    remaining = frame_bytes
    while remaining > 0:
        payload = min(remaining, mtu_payload)
        sizes.append(payload + PACKET_OVERHEAD)
        remaining -= payload
    return sizes


def packetize_array(
    frame_bytes: int, mtu_payload: int = MTU_PAYLOAD
) -> np.ndarray:
    """Vectorized :func:`packetize`: the same sizes as an ``int64`` array.

    ``k`` full-MTU packets followed by one carrying the remainder —
    element-for-element identical to the scalar loop, built without a
    per-packet Python iteration (the fluid emit path's hot spot).
    """
    if frame_bytes <= 0:
        raise ValueError(f"frame must have positive size: {frame_bytes}")
    full, tail = divmod(frame_bytes, mtu_payload)
    sizes = np.empty(full + (1 if tail else 0), dtype=np.int64)
    sizes[:] = mtu_payload + PACKET_OVERHEAD
    if tail:
        sizes[-1] = tail + PACKET_OVERHEAD
    return sizes


class Workload:
    """A frame-cadence traffic generator bound to a send function."""

    def __init__(
        self,
        loop: EventLoop,
        send: SendFn,
        model: FrameModel,
        rng: random.Random,
        flow: str,
        direction: Direction,
        qci: int = 9,
    ) -> None:
        self.loop = loop
        self.send = send
        self.model = model
        self.rng = rng
        self.flow = flow
        self.direction = direction
        self.qci = qci
        self._running = False
        self._frame_index = 0
        self._seq = 0
        # Fluid mode: emit each frame as one PacketBlock instead of
        # per-packet sends.  The scenario runner flips this and rebinds
        # ``send`` to the network's block entry point.
        self.emit_blocks = False
        # Analytic mode: no cadence ticks at all — the AnalyticDriver
        # pulls aggregate traffic via interval_traffic().  start() still
        # draws the phase offset so the cadence is seed-stable.
        self.analytic = False
        self._first_at = 0.0
        self._emitted = 0
        # Per-tick constants, hoisted off the frame cadence hot path.
        self._frame_period = 1.0 / model.fps
        self._frame_label = f"{flow}-frame"
        # The clock object itself: reading ``_clock._now`` per frame
        # skips the EventLoop.now property hop (see DESIGN.md §8).
        self._clock = loop.clock
        self.generated_frames = 0
        self.generated_packets = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Begin generating frames on the event loop."""
        if self._running:
            return
        self._running = True
        offset = self.rng.uniform(0, self._frame_period)
        if self.analytic:
            # Same first draw as the event-driven modes (keeps every
            # later stream position seed-stable), but no ticks: the
            # driver advances the cadence in closed form.
            self._first_at = self.loop.now + offset
            self._emitted = 0
            return
        self.loop.schedule_in(offset, self._tick, label=self._frame_label)

    def stop(self) -> None:
        """Stop generating (already-scheduled frames still fire)."""
        self._running = False

    def interval_traffic(self, t0: float, t1: float) -> IntervalFlow:
        """Aggregate traffic of the stable interval ``(t0, t1]``.

        Analytic mode's emit path: counts the cadence instants that fall
        in the interval (O(1) index arithmetic — no per-frame work, no
        float accumulation drift), splits them into I/P frames by GOP
        position, and carries the *expected* payload of each type,
        integerized by one :func:`~repro.net.interval.stochastic_round`
        draw from the workload's own stream per non-empty interval.
        Intervals must be advanced in order (``t0`` is trusted to be the
        previous call's ``t1``); a stopped workload contributes nothing.
        """
        if not self._running:
            return IntervalFlow.empty(self.flow, self.direction, self.qci)
        period = self._frame_period
        next_at = self._first_at + self._emitted * period
        if next_at > t1:
            return IntervalFlow.empty(self.flow, self.direction, self.qci)
        frames = int((t1 - next_at) / period) + 1
        start_index = self._frame_index
        interval = self.model.iframe_interval
        if interval > 0:
            def iframes_below(n: int) -> int:
                return (n + interval - 1) // interval

            n_iframes = iframes_below(start_index + frames) - iframes_below(
                start_index
            )
        else:
            n_iframes = 0
        n_pframes = frames - n_iframes
        expected_payload = (
            n_iframes * self.model.expected_frame_bytes(iframe=True)
            + n_pframes * self.model.expected_frame_bytes(iframe=False)
        )
        payload = stochastic_round(expected_payload, self.rng.random())
        packets = n_iframes * math.ceil(
            self.model.expected_frame_bytes(iframe=True) / MTU_PAYLOAD
        ) + n_pframes * math.ceil(
            self.model.expected_frame_bytes(iframe=False) / MTU_PAYLOAD
        )
        packets = max(packets, frames)  # every frame is >= 1 packet
        payload = max(payload, packets)  # >= 1 payload byte per packet
        wire_bytes = payload + packets * PACKET_OVERHEAD
        self._emitted += frames
        self._frame_index += frames
        self._seq += packets
        self.generated_frames += frames
        self.generated_packets += packets
        self.generated_bytes += wire_bytes
        return IntervalFlow(
            packets=packets,
            bytes=wire_bytes,
            flow=self.flow,
            direction=self.direction,
            qci=self.qci,
        )

    def _tick(self) -> None:
        if not self._running:
            return
        self._emit_frame()
        # The cadence tick is never cancelled (stop() flips _running and
        # the next tick no-ops), so use the fire-and-forget fast path.
        self.loop.call_in(self._frame_period, self._tick)

    def _emit_frame(self) -> None:
        size = self.model.frame_size(self._frame_index, self.rng)
        self._frame_index += 1
        self.generated_frames += 1
        # All packets of a frame share the emission instant; hoist the
        # clock read and the send callable out of the packetization loop.
        now = self._clock._now
        if self.emit_blocks:
            sizes = packetize_array(size)
            count = int(sizes.size)
            # Wire bytes = payload + per-packet overhead; no need to
            # re-sum the array the packetizer just built.
            wire_bytes = size + count * PACKET_OVERHEAD
            block = PacketBlock._raw(
                sizes,
                self.flow,
                self.direction,
                self.qci,
                now,
                self._seq,
                wire_bytes,
                count,
            )
            self._seq += count
            self.generated_packets += count
            self.generated_bytes += wire_bytes
            self.send(block)
            return
        send = self.send
        flow = self.flow
        direction = self.direction
        qci = self.qci
        seq = self._seq
        packets = 0
        frame_bytes = 0
        for packet_size in packetize(size):
            packet = Packet(
                size=packet_size,
                flow=flow,
                direction=direction,
                qci=qci,
                created_at=now,
                seq=seq,
            )
            seq += 1
            packets += 1
            frame_bytes += packet_size
            send(packet)
        self._seq = seq
        self.generated_packets += packets
        self.generated_bytes += frame_bytes

    @property
    def average_bitrate(self) -> float:
        """Generated bits/s since the loop origin (diagnostics)."""
        if self.loop.now <= 0:
            return 0.0
        return self.generated_bytes * 8.0 / self.loop.now
