"""Workload base: frame models, packetization, and the send loop.

Video-style workloads generate *frames* on a fixed cadence; each frame is
packetized into MTU-sized UDP packets and handed to a send function (the
scenario wires that to the uplink or downlink entry of the simulated LTE
network).  Frame sizes follow a lognormal around the codec's per-frame
budget with periodic intra-frame (I-frame) spikes, which reproduces the
bursty loss exposure of real H.264/GVSP streams.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

SendFn = Callable[[Packet], object]

MTU_PAYLOAD = 1400  # bytes of app payload per packet
PACKET_OVERHEAD = 40  # IP + UDP + RTP-ish headers


@dataclass(frozen=True)
class FrameModel:
    """Statistical model of a frame stream.

    Attributes
    ----------
    bitrate_bps:
        Long-run average bitrate (application bytes).
    fps:
        Frames per second.
    iframe_interval:
        Every n-th frame is an I-frame (0 disables the GOP structure).
    iframe_scale:
        I-frame size relative to the average frame.
    jitter_sigma:
        Lognormal sigma of per-frame size variation.
    """

    bitrate_bps: float
    fps: float
    iframe_interval: int = 30
    iframe_scale: float = 4.0
    jitter_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0 or self.fps <= 0:
            raise ValueError("bitrate and fps must be positive")
        if self.iframe_interval < 0:
            raise ValueError("iframe interval must be >= 0")

    @property
    def mean_frame_bytes(self) -> float:
        """Average frame size implied by bitrate and fps."""
        return self.bitrate_bps / 8.0 / self.fps

    def frame_size(self, frame_index: int, rng: random.Random) -> int:
        """Draw one frame's size in bytes."""
        # Scale P-frames down so the GOP average stays on budget.
        if self.iframe_interval > 0:
            n = self.iframe_interval
            p_scale = (n - self.iframe_scale) / (n - 1) if n > 1 else 1.0
            p_scale = max(p_scale, 0.1)
            scale = (
                self.iframe_scale
                if frame_index % n == 0
                else p_scale
            )
        else:
            scale = 1.0
        mu = math.log(max(self.mean_frame_bytes * scale, 1.0))
        size = rng.lognormvariate(mu, self.jitter_sigma)
        return max(1, int(size))


def packetize(frame_bytes: int, mtu_payload: int = MTU_PAYLOAD) -> list[int]:
    """Split a frame into on-the-wire packet sizes (overhead included)."""
    if frame_bytes <= 0:
        raise ValueError(f"frame must have positive size: {frame_bytes}")
    sizes = []
    remaining = frame_bytes
    while remaining > 0:
        payload = min(remaining, mtu_payload)
        sizes.append(payload + PACKET_OVERHEAD)
        remaining -= payload
    return sizes


class Workload:
    """A frame-cadence traffic generator bound to a send function."""

    def __init__(
        self,
        loop: EventLoop,
        send: SendFn,
        model: FrameModel,
        rng: random.Random,
        flow: str,
        direction: Direction,
        qci: int = 9,
    ) -> None:
        self.loop = loop
        self.send = send
        self.model = model
        self.rng = rng
        self.flow = flow
        self.direction = direction
        self.qci = qci
        self._running = False
        self._frame_index = 0
        self._seq = 0
        # Per-tick constants, hoisted off the frame cadence hot path.
        self._frame_period = 1.0 / model.fps
        self._frame_label = f"{flow}-frame"
        self.generated_frames = 0
        self.generated_packets = 0
        self.generated_bytes = 0

    def start(self) -> None:
        """Begin generating frames on the event loop."""
        if self._running:
            return
        self._running = True
        self.loop.schedule_in(
            self.rng.uniform(0, self._frame_period),
            self._tick,
            label=self._frame_label,
        )

    def stop(self) -> None:
        """Stop generating (already-scheduled frames still fire)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._emit_frame()
        # The cadence tick is never cancelled (stop() flips _running and
        # the next tick no-ops), so use the fire-and-forget fast path.
        self.loop.call_in(self._frame_period, self._tick)

    def _emit_frame(self) -> None:
        size = self.model.frame_size(self._frame_index, self.rng)
        self._frame_index += 1
        self.generated_frames += 1
        # All packets of a frame share the emission instant; hoist the
        # clock read and the send callable out of the packetization loop.
        now = self.loop.now
        send = self.send
        flow = self.flow
        direction = self.direction
        qci = self.qci
        seq = self._seq
        packets = 0
        frame_bytes = 0
        for packet_size in packetize(size):
            packet = Packet(
                size=packet_size,
                flow=flow,
                direction=direction,
                qci=qci,
                created_at=now,
                seq=seq,
            )
            seq += 1
            packets += 1
            frame_bytes += packet_size
            send(packet)
        self._seq = seq
        self.generated_packets += packets
        self.generated_bytes += frame_bytes

    @property
    def average_bitrate(self) -> float:
        """Generated bits/s since the loop origin (diagnostics)."""
        if self.loop.now <= 0:
            return 0.0
        return self.generated_bytes * 8.0 / self.loop.now
