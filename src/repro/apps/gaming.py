"""Online gaming workload (King of Glory via Tencent acceleration, §2.2).

Multiplayer-game player-control traffic: tiny UDP datagrams at a steady
tick rate, ~0.02 Mbps average, downlink (server state updates to the
player), carried on a dedicated QCI=7 bearer — the "gaming with QCI=7"
series of Figures 12d/13d.  The high-QoS bearer's scheduling priority is
what keeps its congestion gap near zero in the paper.
"""

from __future__ import annotations

import random

from repro.apps.base import FrameModel, SendFn, Workload
from repro.net.packet import Direction
from repro.sim.events import EventLoop

GAMING_BITRATE_BPS = 0.02e6  # on-the-wire target
GAMING_TICK_HZ = 30.0
GAMING_QCI = 7

# Game ticks are tiny, so the 40-byte header overhead is a large share of
# the wire rate; budget the payload generator for target minus headers.
_HEADER_BPS = 40 * 8 * GAMING_TICK_HZ
_PAYLOAD_BITRATE_BPS = GAMING_BITRATE_BPS - _HEADER_BPS


class GamingWorkload(Workload):
    """King-of-Glory-style control stream: 20 kbps, 30 Hz ticks, QCI=7."""

    def __init__(
        self,
        loop: EventLoop,
        send: SendFn,
        rng: random.Random,
        qci: int = GAMING_QCI,
    ) -> None:
        super().__init__(
            loop=loop,
            send=send,
            model=FrameModel(
                bitrate_bps=_PAYLOAD_BITRATE_BPS,
                fps=GAMING_TICK_HZ,
                iframe_interval=0,  # no GOP structure: flat small packets
                jitter_sigma=0.35,
            ),
            rng=rng,
            flow="king-of-glory",
            direction=Direction.DOWNLINK,
            qci=qci,
        )
