"""Packet trace record and replay.

The paper replays tcpdump captures (VRidge over operational LTE from the
SIGMETRICS'18 dataset, a 1-hour King of Glory session) with ``tcprelay``.
Those captures are not redistributable, so this module provides the same
workflow over synthetic traces: record any workload into a
:class:`PacketTrace`, persist it as JSON lines, and replay it with
original timing through :class:`TraceReplayWorkload`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

SendFn = Callable[[Packet], object]


@dataclass(frozen=True)
class TraceEntry:
    """One captured packet: relative send time and wire size."""

    time: float
    size: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative trace timestamp: {self.time}")
        if self.size <= 0:
            raise ValueError(f"non-positive packet size: {self.size}")


class PacketTrace:
    """An ordered packet capture with save/load and summary stats."""

    def __init__(
        self,
        entries: Iterable[TraceEntry] = (),
        flow: str = "trace",
        direction: Direction = Direction.DOWNLINK,
        qci: int = 9,
    ) -> None:
        self.entries = sorted(entries, key=lambda e: e.time)
        self.flow = flow
        self.direction = direction
        self.qci = qci

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        """Sum of all packet sizes."""
        return sum(e.size for e in self.entries)

    @property
    def duration(self) -> float:
        """Time span from first to last packet."""
        if not self.entries:
            return 0.0
        return self.entries[-1].time - self.entries[0].time

    @property
    def average_bitrate(self) -> float:
        """Bits per second over the capture duration."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.duration

    def record(self, time: float, size: int) -> None:
        """Append a packet observation (keeps entries time-ordered)."""
        entry = TraceEntry(time=time, size=size)
        if self.entries and entry.time < self.entries[-1].time:
            raise ValueError(
                f"out-of-order record at t={time}; last was "
                f"t={self.entries[-1].time}"
            )
        self.entries.append(entry)

    def save(self, path: str | Path) -> None:
        """Persist as JSON lines (header line + one line per packet)."""
        path = Path(path)
        with path.open("w", encoding="ascii") as fh:
            header = {
                "flow": self.flow,
                "direction": self.direction.value,
                "qci": self.qci,
                "packets": len(self.entries),
            }
            fh.write(json.dumps(header) + "\n")
            for entry in self.entries:
                fh.write(
                    json.dumps({"t": entry.time, "s": entry.size}) + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "PacketTrace":
        """Load a trace saved with :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="ascii") as fh:
            header = json.loads(fh.readline())
            entries = [
                TraceEntry(time=obj["t"], size=obj["s"])
                for obj in (json.loads(line) for line in fh if line.strip())
            ]
        return cls(
            entries=entries,
            flow=header["flow"],
            direction=Direction(header["direction"]),
            qci=header["qci"],
        )


class TraceReplayWorkload:
    """Replays a :class:`PacketTrace` with original relative timing."""

    def __init__(
        self, loop: EventLoop, send: SendFn, trace: PacketTrace
    ) -> None:
        self.loop = loop
        self.send = send
        self.trace = trace
        self.replayed_packets = 0
        self.replayed_bytes = 0
        self._seq = 0
        self._started = False

    def start(self) -> None:
        """Schedule every trace packet relative to now."""
        if self._started:
            return
        self._started = True
        origin = self.loop.now
        base = self.trace.entries[0].time if self.trace.entries else 0.0
        for entry in self.trace.entries:
            self.loop.schedule_at(
                origin + (entry.time - base),
                lambda e=entry: self._emit(e),
                label=f"{self.trace.flow}-replay",
            )

    def _emit(self, entry: TraceEntry) -> None:
        packet = Packet(
            size=entry.size,
            flow=self.trace.flow,
            direction=self.trace.direction,
            qci=self.trace.qci,
            created_at=self.loop.now,
            seq=self._seq,
        )
        self._seq += 1
        self.replayed_packets += 1
        self.replayed_bytes += entry.size
        self.send(packet)
