"""Edge-based VR workload (VRidge / Portal 2 over GVSP, §7.1).

The paper replays tcpdump traces of VRidge streaming 1920x1080p 60 FPS
graphical frames over the GigE Vision Stream Protocol at 9.0 Mbps average,
downlink from the edge server to the headset.  GVSP fragments each frame
into MTU-size leader/payload/trailer packets, which the base packetizer
reproduces; frames are large (~18.7 KB mean), so a single air-interface
outage clips many packets at once — the reason VR shows the largest gaps
in Figure 12/Table 2.
"""

from __future__ import annotations

import random

from repro.apps.base import FrameModel, SendFn, Workload
from repro.net.packet import Direction
from repro.sim.events import EventLoop

VR_BITRATE_BPS = 9.0e6
VR_FPS = 60.0


class VrGvspWorkload(Workload):
    """VRidge GVSP stream: 9.0 Mbps, 60 FPS, downlink, best effort."""

    def __init__(
        self, loop: EventLoop, send: SendFn, rng: random.Random
    ) -> None:
        super().__init__(
            loop=loop,
            send=send,
            model=FrameModel(
                bitrate_bps=VR_BITRATE_BPS,
                fps=VR_FPS,
                iframe_interval=60,
                iframe_scale=3.0,
                jitter_sigma=0.20,
            ),
            rng=rng,
            flow="vridge-gvsp",
            direction=Direction.DOWNLINK,
            qci=9,
        )
