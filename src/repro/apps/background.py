"""iperf-style UDP background traffic.

The paper loads the cell with [0, 1 Gbps] iperf UDP streams to a separate
phone to create congestion (Figures 3 and 13).  The congestion *effect* on
the foreground app is modelled analytically by
:class:`repro.net.congestion.CongestedQueue`; this workload exists for
examples and integration tests that want the background packets to
actually flow (e.g. to drive queue counters or a second UE's charging).
"""

from __future__ import annotations

import random

from repro.apps.base import PACKET_OVERHEAD, SendFn
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

IPERF_DATAGRAM = 1470  # iperf's default UDP payload size


class IperfUdpWorkload:
    """Constant-bitrate UDP blaster at a configurable offered load."""

    def __init__(
        self,
        loop: EventLoop,
        send: SendFn,
        rng: random.Random,
        offered_bps: float,
        direction: Direction = Direction.DOWNLINK,
        flow: str = "iperf-udp",
        qci: int = 9,
    ) -> None:
        if offered_bps < 0:
            raise ValueError(f"negative offered load: {offered_bps}")
        self.loop = loop
        self.send = send
        self.rng = rng
        self.offered_bps = float(offered_bps)
        self.direction = direction
        self.flow = flow
        self.qci = qci
        self._running = False
        self._seq = 0
        self.generated_packets = 0
        self.generated_bytes = 0
        self.packet_size = IPERF_DATAGRAM + PACKET_OVERHEAD
        self._interval = (
            self.packet_size * 8.0 / self.offered_bps
            if self.offered_bps > 0
            else 0.0
        )

    def start(self) -> None:
        """Begin blasting (no-op at zero offered load)."""
        if self._running or self.offered_bps <= 0:
            return
        self._running = True
        self.loop.schedule_in(
            self.rng.uniform(0, self._interval), self._tick, label="iperf"
        )

    def stop(self) -> None:
        """Stop generating."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        packet = Packet(
            size=self.packet_size,
            flow=self.flow,
            direction=self.direction,
            qci=self.qci,
            created_at=self.loop.now,
            seq=self._seq,
        )
        self._seq += 1
        self.generated_packets += 1
        self.generated_bytes += packet.size
        self.send(packet)
        self.loop.schedule_in(self._interval, self._tick, label="iperf")
