"""WebCam streaming workloads (the targeted-advertisement use case, §2.2).

Two variants from the paper's §7.1 setup — both 1920x1080p 30 FPS H.264
camera streams sent *uplink* from the roadside camera device to the edge
server, differing in transport framing and the achieved bitrate:

- RTSP (VLC's RTP/UDP interleaving): 0.77 Mbps average,
- legacy UDP: 1.73 Mbps average.
"""

from __future__ import annotations

import random

from repro.apps.base import FrameModel, SendFn, Workload
from repro.net.packet import Direction
from repro.sim.events import EventLoop

RTSP_BITRATE_BPS = 0.77e6
UDP_BITRATE_BPS = 1.73e6
WEBCAM_FPS = 30.0


class WebcamRtspWorkload(Workload):
    """RTSP camera stream: 0.77 Mbps, 30 FPS, uplink, best effort."""

    def __init__(
        self, loop: EventLoop, send: SendFn, rng: random.Random
    ) -> None:
        super().__init__(
            loop=loop,
            send=send,
            model=FrameModel(
                bitrate_bps=RTSP_BITRATE_BPS,
                fps=WEBCAM_FPS,
                iframe_interval=30,
                iframe_scale=4.0,
                jitter_sigma=0.25,
            ),
            rng=rng,
            flow="webcam-rtsp",
            direction=Direction.UPLINK,
            qci=9,
        )


class WebcamUdpWorkload(Workload):
    """Legacy UDP camera stream: 1.73 Mbps, 30 FPS, uplink, best effort."""

    def __init__(
        self, loop: EventLoop, send: SendFn, rng: random.Random
    ) -> None:
        super().__init__(
            loop=loop,
            send=send,
            model=FrameModel(
                bitrate_bps=UDP_BITRATE_BPS,
                fps=WEBCAM_FPS,
                iframe_interval=30,
                iframe_scale=4.0,
                jitter_sigma=0.30,
            ),
            rng=rng,
            flow="webcam-udp",
            direction=Direction.UPLINK,
            qci=9,
        )
