"""TLC: Trusted, Loss-tolerant Charging for the cellular edge.

A complete Python reproduction of "Bridging the Data Charging Gap in
the Cellular Edge" (SIGCOMM 2019): the loss-selfishness cancellation
game, the publicly verifiable Proof-of-Charging protocol, the
tamper-resilient record collection, and every substrate the paper's
prototype ran on (LTE/EPC core, wireless channel, workloads, monitors,
crypto), plus the experiment harness regenerating the paper's tables
and figures.

Entry points:

- :mod:`repro.core` — the TLC scheme itself,
- :mod:`repro.experiments` — per-figure experiment drivers,
- ``python -m repro`` — the CLI experiment runner.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
