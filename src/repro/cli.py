"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro run fig03 [--fast]
    python -m repro run table2 --workers 4
    python -m repro run all --fast --cache-dir ~/.cache/tlc-campaigns
    python -m repro serve --sessions 50 --metrics-out metrics.json

Each experiment id maps to the same driver the benchmark suite uses;
``--fast`` shrinks seeds and cycle lengths for a quick look.
``--workers N`` fans the scenario grids out over N processes through the
campaign engine, and ``--cache-dir`` reuses previously computed scenario
results — both are numerically transparent: any worker count and any
cache state produce identical tables.

``--metrics-out FILE`` turns on per-scenario telemetry: every scenario
run by the experiment collects per-layer byte counters, the CLI prints a
reconciliation summary (gateway-counted minus per-layer losses equals
device-received, per scenario), and the full metric snapshots are
written to ``FILE`` as JSON.  ``--trace FILE`` additionally captures
structured trace events (simulated-clock timestamps) to ``FILE`` as
JSON Lines, streamed through a buffered :class:`TraceSink` that never
leaves a truncated line behind — even when a scenario or worker fails
mid-campaign.  See ``docs/api.md``.

``--profile`` wraps the experiment loop in cProfile and prints the top
25 functions by cumulative time on exit; ``--profile-out FILE`` dumps
the raw stats for ``python -m pstats`` so hot-path regressions are
diagnosable without editing code.

``serve`` boots the long-lived async charging service
(:mod:`repro.service`) instead of a batch experiment: it drives
``--sessions`` concurrent synthetic sessions through the real ingest
path and keeps serving until the load completes (plus ``--linger``) or
SIGTERM/SIGINT arrives.  Shutdown is graceful either way, and
``--metrics-out`` writes the final service snapshot — ingest tallies,
delivery stats, attestation counts, and the exact accounting table —
as JSON after the drain, so even a signal-stopped service leaves a
complete snapshot.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from typing import Callable

from repro.experiments.campaign import (
    CampaignEngine,
    set_default_engine,
)
from repro.experiments.cdr_error import record_error_samples
from repro.experiments import fault_tolerance
from repro.experiments.congestion import (
    ALL_APPS,
    FIG3_APPS,
    congestion_sweep,
)
from repro.experiments.intermittent import (
    intermittent_sweep,
    intermittent_timeseries,
)
from repro.experiments.latency import negotiation_rounds, rtt_comparison
from repro.experiments.mobility import mobility_sweep
from repro.experiments.overall import overall_dataset, table2_summary
from repro.experiments.plan_sweep import plan_sweep
from repro.experiments.poc_cost import (
    measure_live_poc_costs,
    message_sizes,
    modelled_poc_costs,
    modelled_verifier_throughput_per_hour,
)
from repro.experiments.report import (
    cdf_summary,
    render_accounting,
    render_table,
)
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.transport_comparison import compare_transports
from repro.telemetry.accounting import AccountingTable
from repro.telemetry.trace import TraceSink


def _fig03(fast: bool) -> str:
    backgrounds = (
        (0.0, 120e6, 160e6)
        if fast
        else (0.0, 100e6, 120e6, 140e6, 160e6)
    )
    points = congestion_sweep(
        apps=FIG3_APPS,
        backgrounds_bps=backgrounds,
        seeds=(1,) if fast else (1, 2, 3),
        cycle_duration=20.0 if fast else 30.0,
    )
    return render_table(
        ["app", "background Mbps", "record gap MB/hr", "loss"],
        [
            [
                p.app,
                f"{p.background_bps / 1e6:.0f}",
                f"{p.record_gap_mb_per_hr:.1f}",
                f"{p.loss_fraction:.1%}",
            ]
            for p in points
        ],
    )


def _fig04(fast: bool) -> str:
    trace = intermittent_timeseries(
        duration=120.0 if fast else 300.0, seed=4,
        disconnectivity_ratio=0.10,
    )
    lines = ["t  sent(Mbps)  delivered(Mbps)  gap(MB)  radio"]
    for s in trace.samples[:: 10 if fast else 15]:
        lines.append(
            f"{s.time:4.0f}  {s.edge_rate_mbps:10.2f}  "
            f"{s.network_rate_mbps:15.2f}  {s.cumulative_gap_mb:7.2f}  "
            f"{'up' if s.connected else 'DOWN'}"
        )
    lines.append(
        f"final gap {trace.final_gap_mb:.2f} MB, mean outage "
        f"{trace.mean_outage_duration:.2f}s"
    )
    return "\n".join(lines)


def _fig12(fast: bool) -> str:
    from repro.experiments.overall import gap_cdf_series

    outcomes = overall_dataset(
        apps=ALL_APPS,
        conditions=((0.0, 0.0), (160e6, 0.05))
        if fast
        else ((0.0, 0.0), (120e6, 0.02), (160e6, 0.05)),
        seeds=(1,) if fast else (1, 2),
        cycle_duration=20.0 if fast else 30.0,
    )
    lines = []
    for app in ALL_APPS:
        series = gap_cdf_series(outcomes, app)
        lines.append(f"--- {app} ---")
        for scheme, values in series.items():
            lines.append(cdf_summary(scheme, values, unit="MB/hr"))
    return "\n".join(lines)


def _table2(fast: bool) -> str:
    outcomes = overall_dataset(
        apps=ALL_APPS,
        conditions=((0.0, 0.0), (140e6, 0.03))
        if fast
        else ((0.0, 0.0), (100e6, 0.0), (140e6, 0.03), (160e6, 0.06)),
        seeds=(1, 2) if fast else (1, 2, 3, 4, 5),
        cycle_duration=20.0 if fast else 30.0,
    )
    rows = table2_summary(outcomes)
    return render_table(
        ["app", "Mbps", "legacy ∆", "ε", "optimal ∆", "ε", "random ∆", "ε"],
        [
            [
                r.app,
                f"{r.bitrate_mbps:.2f}",
                f"{r.legacy_gap_mb_per_hr:.2f}",
                f"{r.legacy_gap_ratio:.1%}",
                f"{r.tlc_optimal_gap_mb_per_hr:.2f}",
                f"{r.tlc_optimal_gap_ratio:.1%}",
                f"{r.tlc_random_gap_mb_per_hr:.2f}",
                f"{r.tlc_random_gap_ratio:.1%}",
            ]
            for r in rows
        ],
    )


def _fig13(fast: bool) -> str:
    points = congestion_sweep(
        apps=ALL_APPS,
        backgrounds_bps=(0.0, 160e6) if fast else (0.0, 120e6, 160e6),
        seeds=(1, 2) if fast else (1, 2, 3, 4),
        cycle_duration=20.0 if fast else 30.0,
    )
    return render_table(
        ["app", "background Mbps", "legacy ε", "random ε", "optimal ε"],
        [
            [
                p.app,
                f"{p.background_bps / 1e6:.0f}",
                f"{p.legacy_gap_ratio:.1%}",
                f"{p.tlc_random_gap_ratio:.1%}",
                f"{p.tlc_optimal_gap_ratio:.1%}",
            ]
            for p in points
        ],
    )


def _fig14(fast: bool) -> str:
    points = intermittent_sweep(
        etas=(0.05, 0.15) if fast else (0.05, 0.09, 0.12, 0.15),
        seeds=(1, 2) if fast else (1, 2, 3),
        cycle_duration=40.0 if fast else 120.0,
    )
    return render_table(
        ["η", "legacy ε", "random ε", "optimal ε"],
        [
            [
                f"{p.disconnectivity_ratio:.0%}",
                f"{p.legacy_gap_ratio:.1%}",
                f"{p.tlc_random_gap_ratio:.1%}",
                f"{p.tlc_optimal_gap_ratio:.1%}",
            ]
            for p in points
        ],
    )


def _fig15(fast: bool) -> str:
    results = plan_sweep(
        seeds=(1, 2) if fast else (1, 2, 3, 4, 5, 6),
        backgrounds_bps=(120e6,) if fast else (0.0, 120e6, 160e6),
        cycle_duration=20.0 if fast else 60.0,
    )
    return "\n".join(
        cdf_summary(f"c={r.c:.2f} µ", list(r.reductions)) for r in results
    )


def _fig16(fast: bool) -> str:
    rtts = rtt_comparison(probes=50 if fast else 200)
    rounds = negotiation_rounds(
        seeds=tuple(range(1, 6 if fast else 21)),
        cycle_duration=15.0 if fast else 30.0,
    )
    a = render_table(
        ["device", "RTT w/o TLC", "RTT w/ TLC"],
        [
            [m.device, f"{m.rtt_ms_without_tlc:.1f}ms",
             f"{m.rtt_ms_with_tlc:.1f}ms"]
            for m in rtts
        ],
    )
    b = render_table(
        ["app", "optimal rounds", "random rounds"],
        [
            [r.app, f"{r.optimal_rounds_mean:.1f}",
             f"{r.random_rounds_mean:.1f}"]
            for r in rounds
        ],
    )
    return a + "\n\n" + b


def _fig17(fast: bool) -> str:
    sizes = message_sizes()
    costs = modelled_poc_costs(samples=100 if fast else 400)
    live = measure_live_poc_costs(iterations=3 if fast else 15)
    lines = [
        render_table(
            ["message", "bytes"], [[k, v] for k, v in sizes.items()]
        ),
        "",
        render_table(
            ["device", "negotiate ms", "verify ms"],
            [
                [
                    c.device,
                    f"{c.negotiation_mean_ms:.1f}",
                    f"{c.verification_mean_ms:.1f}",
                ]
                for c in costs
            ],
        ),
        f"modelled Z840 throughput: "
        f"{modelled_verifier_throughput_per_hour():,.0f}/hr",
        f"live verification on this host: "
        f"{live.verification_ms_mean:.3f} ms "
        f"({live.verifications_per_hour:,.0f}/hr)",
    ]
    return "\n".join(lines)


def _fig18(fast: bool) -> str:
    samples = record_error_samples(
        seeds=tuple(range(1, 9 if fast else 25)),
        app="webcam-udp",
        cycle_duration=30.0 if fast else 60.0,
    )
    return render_table(
        ["record", "mean", "p95"],
        [
            [
                "operator γo",
                f"{samples.operator_mean:.2%}",
                f"{samples.operator_percentile(95):.2%}",
            ],
            [
                "edge γe",
                f"{samples.edge_mean:.2%}",
                f"{samples.edge_percentile(95):.2%}",
            ],
        ],
    )


def _mobility(fast: bool) -> str:
    points = mobility_sweep(
        intervals=(30.0, 1.5) if fast else (30.0, 5.0, 1.5),
        seeds=(1,) if fast else (1, 2, 3),
        duration=30.0 if fast else 40.0,
    )
    return render_table(
        ["HO interval s", "HO/cycle", "legacy ε", "TLC ε"],
        [
            [
                f"{p.mean_handover_interval:.1f}",
                f"{p.handovers_per_cycle:.1f}",
                f"{p.legacy_gap_ratio:.2%}",
                f"{p.tlc_gap_ratio:.2%}",
            ]
            for p in points
        ],
    )


def _rss(fast: bool) -> str:
    from repro.experiments.rss_sweep import rss_sweep

    points = rss_sweep(
        rss_values_dbm=(-95.0, -110.0) if fast else (-95.0, -103.0, -110.0),
        seeds=(1,) if fast else (1, 2, 3),
        cycle_duration=20.0 if fast else 30.0,
    )
    return render_table(
        ["RSS dBm", "loss", "legacy ε", "optimal ε"],
        [
            [
                f"{p.rss_dbm:.0f}",
                f"{p.loss_fraction:.1%}",
                f"{p.legacy_gap_ratio:.1%}",
                f"{p.tlc_optimal_gap_ratio:.1%}",
            ]
            for p in points
        ],
    )


def _faults(fast: bool) -> str:
    results = fault_tolerance.fault_campaign(
        seeds=(1,) if fast else (1, 2),
        cycle_duration=20.0 if fast else 30.0,
        intensities=(0.5,) if fast else (0.2, 0.5, 0.8),
    )
    return fault_tolerance.render_fault_report(results)


# ``run scale --ues N --shards A,B,C [--mode M] [--schedule S]
# [--chunk-ues C]`` overrides, set by main() and cleared in its
# finally block (same pattern as the fault-plan override).
_scale_ues: int | None = None
_scale_shards: tuple[int, ...] | None = None
_scale_mode: str | None = None
_scale_schedule: str | None = None
_scale_chunk_ues: int | None = None


def set_scale_override(
    ues: int | None,
    shards: tuple[int, ...] | None,
    mode: str | None = None,
    schedule: str | None = None,
    chunk_ues: int | None = None,
) -> None:
    """Override the ``scale`` experiment's population / shard grid."""
    global _scale_ues, _scale_shards, _scale_mode
    global _scale_schedule, _scale_chunk_ues
    _scale_ues = ues
    _scale_shards = shards
    _scale_mode = mode
    _scale_schedule = schedule
    _scale_chunk_ues = chunk_ues


def _scale(fast: bool) -> str:
    """Scaling campaign: one population cell at several shard counts.

    Regenerates the ``million_ue`` scaling curve (events/s, normalized
    per-UE compute cost, and peak shard RSS vs shard count) and checks
    the merge-invariant contract: every shard count must produce the
    byte-identical merged accounting table and Algorithm 1 settlement.
    ``--ues``/``--shards`` set the population and the shard-count
    grid; ``--mode`` picks the advancement mode (default fluid);
    ``--schedule`` picks the fan-out strategy (default: the
    work-stealing chunk scheduler) and ``--chunk-ues`` its chunk size.
    Merged totals depend only on the seed, the population, and the
    mode — never on the shard count, the schedule, or the chunk size.
    """
    from repro.experiments.sharding import scaling_curve

    ues = _scale_ues if _scale_ues is not None else (200 if fast else 2000)
    shard_counts = (
        _scale_shards
        if _scale_shards is not None
        else ((1, 2, 4) if fast else (1, 2, 4, 8))
    )
    mode = _scale_mode if _scale_mode is not None else "fluid"
    schedule = _scale_schedule if _scale_schedule is not None else "steal"
    config = ScenarioConfig(
        app="webcam-udp",
        seed=42,
        cycle_duration=2.0,
        mode=mode,
        telemetry=True,
        n_ues=ues,
    )
    points = scaling_curve(
        config, shard_counts, schedule=schedule, chunk_ues=_scale_chunk_ues
    )
    table = render_table(
        ["shards", "wall s", "ms/UE", "cpu ms/UE", "events/s",
         "app MB/s", "peak RSS MB", "reconciles", "settled B",
         "invariant"],
        [
            [
                p.shards,
                f"{p.wall_s:.2f}",
                f"{p.per_ue_ms:.3f}",
                f"{p.cpu_per_ue_ms:.3f}",
                f"{p.events_per_sec:,.0f}",
                f"{p.bytes_per_sec / 1e6:.1f}",
                f"{p.rss_max_bytes / 1e6:.1f}",
                "yes" if p.reconciles else "NO",
                f"{p.settled:.0f}",
                "yes" if p.matches_first else "NO",
            ]
            for p in points
        ],
    )
    ok = all(p.matches_first and p.reconciles for p in points)
    verdict = (
        "merged accounting and settlement are shard-count invariant"
        if ok
        else "MERGE INVARIANT VIOLATED — shard counts disagree"
    )
    chunk = "auto" if _scale_chunk_ues is None else _scale_chunk_ues
    header = (
        f"{ues:,} UEs per point, mode={mode}, schedule={schedule}"
        + (f", chunk_ues={chunk}" if schedule == "steal" else "")
    )
    return f"{header}\n{table}\n{verdict}"


def _service_load(fast: bool) -> str:
    """Drive the long-lived charging service with concurrent sessions.

    Boots a :class:`repro.service.ChargingService` on one asyncio loop,
    submits every session's synthetic stream through the real ingest
    path (admission control, bounded queues, backpressure retries),
    shuts down cleanly, and reports the service tier's verdicts: exact
    accounting reconciliation, batch-attested PoCs, and settlement
    equivalence with a batch replay of the same events.  The CI
    ``service-smoke`` job greps this output.
    """
    from repro.service import LoadProfile, render_service_report
    from repro.service.load import run_service_load

    profile = LoadProfile(
        sessions=12 if fast else 50,
        events_per_session=20 if fast else 40,
    )
    return render_service_report(run_service_load(profile))


def _transport(fast: bool) -> str:
    udp, tcp = compare_transports(
        seed=3, loss_rate=0.10, duration=15.0 if fast else 30.0
    )
    return render_table(
        ["transport", "delivery", "charged B", "retx B"],
        [
            [o.transport, f"{o.delivery_ratio:.1%}", o.gateway_charged,
             o.retransmitted_bytes]
            for o in (udp, tcp)
        ],
    )


EXPERIMENTS: dict[str, tuple[str, Callable[[bool], str]]] = {
    "fig03": ("record gap vs congestion (Figure 3)", _fig03),
    "fig04": ("intermittent-connectivity time series (Figure 4)", _fig04),
    "fig12": ("gap CDFs per scheme (Figure 12)", _fig12),
    "table2": ("average gap per app (Table 2)", _table2),
    "fig13": ("gap ratio vs congestion (Figure 13)", _fig13),
    "fig14": ("gap ratio vs disconnectivity (Figure 14)", _fig14),
    "fig15": ("reduction vs plan weight c (Figure 15)", _fig15),
    "fig16": ("latency friendliness (Figure 16)", _fig16),
    "fig17": ("PoC cost (Figure 17)", _fig17),
    "fig18": ("record accuracy (Figure 18)", _fig18),
    "mobility": ("handover-rate ablation", _mobility),
    "transport": ("UDP vs TCP-like ablation", _transport),
    "rss": ("signal-strength ablation", _rss),
    "faults": ("fault-injection & recovery campaign", _faults),
    "scale": ("sharded population scaling curve", _scale),
    "service-load": ("async charging service under load", _service_load),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLC (SIGCOMM'19) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    serve = sub.add_parser(
        "serve",
        help="run the long-lived async charging service",
        description="Boot repro.service.ChargingService, drive the "
        "synthetic session load through it, and keep serving until the "
        "load finishes (plus --linger) or SIGTERM/SIGINT arrives; "
        "shutdown is always graceful: sessions drain, partial Merkle "
        "batches seal, and --metrics-out gets the final snapshot.",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=8,
        metavar="N",
        help="concurrent synthetic sessions to drive (default 8)",
    )
    serve.add_argument(
        "--events",
        type=int,
        default=40,
        metavar="N",
        help="usage events per session (default 40)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=23,
        metavar="N",
        help="seed for the synthetic load streams (default 23)",
    )
    serve.add_argument(
        "--cycle",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="charging-cycle length in stream seconds (default 60)",
    )
    serve.add_argument(
        "--cdr-period",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="CDR flush period in stream seconds (default 10)",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the service up this long after the load completes, "
        "until SIGTERM/SIGINT (default 0: shut down immediately)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the service's final metrics snapshot (ingest, "
        "delivery, attestation, verifier, accounting) to FILE as JSON "
        "on shutdown — including signal-driven shutdown",
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument(
        "--fast",
        action="store_true",
        help="smaller seeds/cycles for a quick look",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan scenario grids out over N worker processes (default 1)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed scenario result cache directory "
        "(default: no caching)",
    )
    run.add_argument(
        "--mode",
        choices=("packet", "fluid", "analytic"),
        default=None,
        help="data-plane granularity: 'packet' pays one event chain per "
        "packet, 'fluid' moves one block per video frame through the "
        "same elements with bit-identical byte totals, 'analytic' "
        "settles whole stable intervals in closed form with "
        "statistically equivalent totals that still reconcile exactly "
        "(default: each experiment's own setting)",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="collect per-layer telemetry for every scenario, print a "
        "byte-accounting summary, and write the metric snapshots to "
        "FILE as JSON",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also capture structured trace events (simulated-clock "
        "timestamps) to FILE as JSON Lines",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="run the 'faults' experiment against a fault plan loaded "
        "from PLAN (JSON) instead of the built-in grid",
    )
    run.add_argument(
        "--ues",
        type=int,
        default=None,
        metavar="N",
        help="population size for the 'scale' experiment (UEs per cell)",
    )
    run.add_argument(
        "--shards",
        default=None,
        metavar="N[,N...]",
        help="shard counts for the 'scale' experiment, e.g. '8' or "
        "'1,2,4,8'; merged results are byte-identical for every count",
    )
    run.add_argument(
        "--schedule",
        default=None,
        choices=("static", "steal"),
        help="fan-out strategy for the 'scale' experiment: 'steal' "
        "(default) pulls small UE chunks through the work-stealing "
        "scheduler's warm workers; 'static' runs one contiguous range "
        "per shard on the campaign engine",
    )
    run.add_argument(
        "--chunk-ues",
        type=int,
        default=None,
        metavar="N",
        help="UEs per work-stealing chunk for the 'scale' experiment "
        "(default: auto-sized, ~8 chunks per worker); only valid with "
        "--schedule steal",
    )
    run.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole run on the first failing scenario "
        "(default: record failures, report them, and exit nonzero)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run the experiments under cProfile and print the top 25 "
        "functions by cumulative time on exit",
    )
    run.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="with --profile, also dump the raw cProfile stats to FILE "
        "(inspect with python -m pstats FILE)",
    )
    return parser


def _render_telemetry_summary(records: list[dict]) -> str:
    """The per-scenario reconciliation summary ``--metrics-out`` prints."""
    rows = []
    for record in records:
        table = AccountingTable.from_dict(record["telemetry"]["accounting"])
        rows.append(
            [
                record["scenario"],
                table.direction,
                f"{table.counted:.0f}",
                f"{table.total_losses:.0f}",
                f"{table.received:.0f}",
                "yes" if table.reconciles else "NO",
            ]
        )
    return render_table(
        ["scenario", "dir", "counted", "losses", "received", "reconciles"],
        rows,
    )


def serve_command(args: argparse.Namespace) -> int:
    """``python -m repro serve``: the service as a long-lived process.

    The service runs until its synthetic load completes (plus
    ``--linger``) or a SIGTERM/SIGINT arrives; either way the shutdown
    path is the same graceful one — sessions drain, the retry spool
    resolves, partial Merkle batches seal — and ``--metrics-out`` is
    written *after* it, so a signal-stopped service still leaves a
    complete, reconciled snapshot behind.
    """
    import asyncio
    import signal

    from repro.service import ChargingService, LoadProfile, ServiceConfig
    from repro.service.load import drive_load

    try:
        profile = LoadProfile(
            sessions=args.sessions,
            events_per_session=args.events,
            seed=args.seed,
        )
        config = ServiceConfig(
            seed=args.seed,
            cycle_duration=args.cycle,
            cdr_period=args.cdr_period,
        )
    except ValueError as exc:
        print(f"invalid serve configuration: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> tuple[ChargingService, dict, str]:
        service = ChargingService(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        reason = {"why": "load complete"}

        def _on_signal(name: str) -> None:
            reason["why"] = name
            stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, _on_signal, sig.name)
        print(
            f"[serve] charging service up: {profile.sessions} sessions x "
            f"{profile.events_per_session} events, cycle "
            f"{config.cycle_duration:.0f}s (pid ready for SIGTERM)",
            flush=True,
        )
        load = asyncio.create_task(drive_load(service, profile))
        stopped = asyncio.create_task(stop.wait())
        await asyncio.wait(
            {load, stopped}, return_when=asyncio.FIRST_COMPLETED
        )
        if load.done() and not stop.is_set() and args.linger > 0:
            print(
                f"[serve] load complete; serving for up to "
                f"{args.linger:.0f}s more (SIGTERM to stop)",
                flush=True,
            )
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.linger)
            except asyncio.TimeoutError:
                pass
        snapshot = await service.shutdown()
        # A signal mid-load leaves the driver submitting into a closed
        # ingest; every remaining event rejects with CLOSED and the
        # driver finishes on its own — await it so nothing is pending.
        await load
        stopped.cancel()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(sig)
        return service, snapshot, reason["why"]

    service, snapshot, why = asyncio.run(_serve())
    table = service.accounting()
    print(f"[serve] shutdown ({why}): "
          f"{snapshot['ingest']['accepted_events']} events charged, "
          f"{snapshot['settlements']} settlements, "
          f"{snapshot['attestation']['claims_attested']} claims attested "
          f"in {snapshot['attestation']['batches_sealed']} batches")
    print(f"[serve] accounting reconciles exactly: "
          f"{'yes' if table.reconciles else 'NO'} "
          f"(residual {table.residual:.0f} B)")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
        print(f"[serve] metrics snapshot written to {args.metrics_out}")
    return 0 if table.reconciles else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (description, _fn) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    if args.command == "serve":
        return serve_command(args)

    if args.experiment == "all":
        targets = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        targets = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2

    workers = getattr(args, "workers", 1)
    cache_dir = getattr(args, "cache_dir", None)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace", None)
    plan_file = getattr(args, "faults", None)
    if plan_file is not None:
        from repro.faults.plan import FaultPlan, FaultPlanError

        try:
            fault_tolerance.set_plan_override(FaultPlan.load(plan_file))
        except (OSError, ValueError, FaultPlanError) as exc:
            print(f"cannot load fault plan {plan_file!r}: {exc}",
                  file=sys.stderr)
            return 2
    shards_arg = getattr(args, "shards", None)
    if shards_arg is not None:
        try:
            shard_counts = tuple(
                int(part) for part in str(shards_arg).split(",") if part
            )
            if not shard_counts or any(s < 1 for s in shard_counts):
                raise ValueError(shards_arg)
        except ValueError:
            print(
                f"--shards must be positive integers like '8' or "
                f"'1,2,4,8', got {shards_arg!r}",
                file=sys.stderr,
            )
            return 2
    else:
        shard_counts = None
    chunk_ues = getattr(args, "chunk_ues", None)
    if chunk_ues is not None and chunk_ues < 1:
        print(
            f"--chunk-ues must be a positive integer, got {chunk_ues}",
            file=sys.stderr,
        )
        return 2
    schedule = getattr(args, "schedule", None)
    if chunk_ues is not None and schedule == "static":
        print(
            "--chunk-ues only applies to --schedule steal",
            file=sys.stderr,
        )
        return 2
    set_scale_override(
        getattr(args, "ues", None),
        shard_counts,
        getattr(args, "mode", None),
        schedule,
        chunk_ues,
    )
    collect = metrics_out is not None or trace_out is not None
    engine = CampaignEngine(
        workers=workers,
        cache_dir=cache_dir,
        telemetry=collect,
        trace=trace_out is not None,
        mode=getattr(args, "mode", None),
        fail_fast=getattr(args, "fail_fast", False),
    )
    set_default_engine(engine)
    failures: list = []

    # The trace sink opens before any experiment runs and closes in the
    # finally block, so a crashing scenario (or worker) can never leave
    # a truncated JSONL line: TraceSink serializes whole batches of
    # complete lines before a single write, and close() flushes whatever
    # completed scenarios already produced.
    trace_sink = TraceSink(trace_out) if trace_out is not None else None
    traced_records = 0

    def _drain_trace() -> None:
        """Stream newly collected per-scenario traces into the sink."""
        nonlocal traced_records
        if trace_sink is None:
            return
        records = engine.telemetry_records
        for record in records[traced_records:]:
            trace_sink.write(record["telemetry"].get("trace", ()))
        traced_records = len(records)

    profiler: cProfile.Profile | None = None
    if getattr(args, "profile", False) or getattr(args, "profile_out", None):
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in targets:
            description, fn = EXPERIMENTS[name]
            print(f"===== {name}: {description} =====")
            print(fn(args.fast))
            print()
            failures.extend(engine.last_failures)
            _drain_trace()
    finally:
        if profiler is not None:
            profiler.disable()
        set_default_engine(None)
        fault_tolerance.set_plan_override(None)
        set_scale_override(None, None, None, None, None)
        if trace_sink is not None:
            _drain_trace()
            trace_sink.close()

    if collect:
        records = engine.telemetry_records
        if records:
            print("===== telemetry: per-layer byte accounting =====")
            print(_render_telemetry_summary(records))
            for record in records:
                if not record["telemetry"]["accounting"]["reconciles"]:
                    table = AccountingTable.from_dict(
                        record["telemetry"]["accounting"]
                    )
                    print()
                    print(
                        render_accounting(
                            table, title=f"! {record['scenario']}"
                        )
                    )
            print()
        else:
            print(
                "[telemetry] no scenario-grid runs in this experiment; "
                "nothing to meter"
            )
        if metrics_out is not None:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    [
                        {
                            "scenario": r["scenario"],
                            "config": r["config"],
                            "direction": r["telemetry"]["direction"],
                            "accounting": r["telemetry"]["accounting"],
                            "metrics": r["telemetry"]["metrics"],
                        }
                        for r in records
                    ],
                    fh,
                    indent=2,
                )
                fh.write("\n")
            print(f"[telemetry] metrics for {len(records)} scenario runs "
                  f"written to {metrics_out}")
        if trace_sink is not None:
            print(
                f"[telemetry] {trace_sink.lines_written} trace events "
                f"written to {trace_out}"
            )

    if workers > 1 or cache_dir is not None:
        totals = engine.snapshot_totals()
        print(
            f"[campaign] {totals.total} scenario runs: "
            f"{totals.executed} executed, {totals.cache_hits} cached, "
            f"{totals.tasks_per_second:.2f} runs/s "
            f"({totals.compute_seconds:.1f}s compute in "
            f"{totals.wall_seconds:.1f}s wall)"
        )

    if profiler is not None:
        profile_out = getattr(args, "profile_out", None)
        if profile_out is not None:
            profiler.dump_stats(profile_out)
            print(f"[profile] cProfile stats written to {profile_out}")
        print("[profile] top 25 functions by cumulative time:")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)

    if failures:
        print(
            f"[campaign] {len(failures)} scenario(s) FAILED:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
