"""The ingest front end: admission control, bounded queues, rate limits.

:class:`UsageIngest` is the only way events enter the service.  It
enforces three things, all with explicit reject-with-reason verdicts:

- **admission control** — a cap on concurrently open sessions and a
  check that events reference a known, live session;
- **backpressure** — one bounded ``asyncio.Queue`` per session; a full
  queue rejects with :attr:`RejectReason.QUEUE_FULL` instead of
  buffering without bound, and the caller decides whether to retry
  (the load driver does) or shed;
- **rate limiting** — a per-session token bucket refilled in *stream*
  time (event timestamps), so the limit is deterministic and a replay
  of the same events is limited identically.

Every submitted byte is counted: accepted bytes flow to the charging
core, rejected bytes are tallied per :class:`RejectReason`.  The
service's accounting table treats the ingest as a metering layer whose
drops are exactly those tallies, which is how ``counted − Σ losses ==
received`` stays an integer identity under overload.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.service.config import ServiceConfig
from repro.service.events import (
    Admission,
    RejectReason,
    SessionSpec,
    UsageEvent,
)

#: Queue sentinel marking the end of a session's event stream.
END_OF_STREAM = object()


class TokenBucket:
    """A token bucket refilled by stream time (not the wall clock)."""

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive: {rate_per_s}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def admit(self, amount: int, now: float) -> bool:
        """Spend ``amount`` tokens at stream time ``now`` if available."""
        if now > self._last:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate_per_s,
            )
            self._last = now
        if amount <= self._tokens:
            self._tokens -= amount
            return True
        return False


@dataclass
class _IngestSession:
    """Ingest-side state for one open session."""

    spec: SessionSpec
    queue: asyncio.Queue
    bucket: TokenBucket | None
    degraded: bool = False
    closed: bool = False
    accepted_events: int = 0
    accepted_bytes: int = 0
    rejected_events: dict[str, int] = field(default_factory=dict)
    rejected_bytes: dict[str, int] = field(default_factory=dict)


class UsageIngest:
    """Admission-controlled, rate-limited front door of the service."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._sessions: dict[str, _IngestSession] = {}
        self.closed = False
        # Service-wide tallies (integers; the accounting table's inputs).
        self.received_events = 0
        self.received_bytes = 0
        self.accepted_events = 0
        self.accepted_bytes = 0
        self.rejected_events: dict[str, int] = {}
        self.rejected_bytes: dict[str, int] = {}
        self.sessions_rejected: dict[str, int] = {}

    # ------------------------------------------------------------------
    # session lifecycle

    def open_session(self, spec: SessionSpec) -> Admission:
        """Admit a new session, or reject it with a reason."""
        if self.closed:
            return self._reject_session(RejectReason.CLOSED)
        if spec.session_id in self._sessions:
            return self._reject_session(RejectReason.DUPLICATE_SESSION)
        live = sum(
            1 for s in self._sessions.values() if not s.closed
        )
        if live >= self.config.max_sessions:
            return self._reject_session(RejectReason.SESSION_LIMIT)
        bucket = None
        if self.config.rate_bytes_per_s is not None:
            bucket = TokenBucket(
                self.config.rate_bytes_per_s, self.config.burst_bytes
            )
        self._sessions[spec.session_id] = _IngestSession(
            spec=spec,
            queue=asyncio.Queue(maxsize=self.config.queue_depth),
            bucket=bucket,
        )
        return Admission.ok()

    async def end_session(self, session_id: str) -> None:
        """Mark a session's stream finished (waits for queue space)."""
        session = self._sessions.get(session_id)
        if session is None or session.closed:
            return
        session.closed = True
        await session.queue.put(END_OF_STREAM)

    def queue_for(self, session_id: str) -> asyncio.Queue:
        """The session's bounded event queue (the worker's input)."""
        return self._sessions[session_id].queue

    def mark_degraded(self, session_id: str) -> None:
        """Future submits for this session reject SESSION_DEGRADED."""
        session = self._sessions.get(session_id)
        if session is not None:
            session.degraded = True

    def open_session_ids(self) -> list[str]:
        """Sessions opened and not yet ended, in insertion order."""
        return [
            sid for sid, s in self._sessions.items() if not s.closed
        ]

    # ------------------------------------------------------------------
    # event submission

    def submit(self, event: UsageEvent) -> Admission:
        """Offer one event; never silently drops.

        Each call is one metering report: it is counted as *received*
        whatever the verdict, and a rejected report's bytes are tallied
        under the rejection reason — the caller may re-submit later (a
        fresh report, counted afresh) or give up, and the accounting
        identity holds either way.
        """
        self.received_events += 1
        self.received_bytes += event.sent_bytes
        session = self._sessions.get(event.session_id)
        if session is None:
            return self._reject(None, event, RejectReason.UNKNOWN_SESSION)
        if self.closed or session.closed:
            return self._reject(session, event, RejectReason.CLOSED)
        if session.degraded:
            return self._reject(
                session, event, RejectReason.SESSION_DEGRADED
            )
        if session.bucket is not None and not session.bucket.admit(
            event.sent_bytes, event.timestamp
        ):
            return self._reject(session, event, RejectReason.RATE_LIMITED)
        try:
            session.queue.put_nowait(event)
        except asyncio.QueueFull:
            return self._reject(session, event, RejectReason.QUEUE_FULL)
        session.accepted_events += 1
        session.accepted_bytes += event.sent_bytes
        self.accepted_events += 1
        self.accepted_bytes += event.sent_bytes
        return Admission.ok()

    # ------------------------------------------------------------------
    # bookkeeping

    def _reject(
        self,
        session: _IngestSession | None,
        event: UsageEvent,
        reason: RejectReason,
    ) -> Admission:
        key = reason.value
        self.rejected_events[key] = self.rejected_events.get(key, 0) + 1
        self.rejected_bytes[key] = (
            self.rejected_bytes.get(key, 0) + event.sent_bytes
        )
        if session is not None:
            session.rejected_events[key] = (
                session.rejected_events.get(key, 0) + 1
            )
            session.rejected_bytes[key] = (
                session.rejected_bytes.get(key, 0) + event.sent_bytes
            )
        return Admission.reject(reason)

    def _reject_session(self, reason: RejectReason) -> Admission:
        key = reason.value
        self.sessions_rejected[key] = (
            self.sessions_rejected.get(key, 0) + 1
        )
        return Admission.reject(reason)

    @property
    def rejected_bytes_total(self) -> int:
        """All bytes refused at the front door, across reasons."""
        return sum(self.rejected_bytes.values())

    def stats(self) -> dict:
        """Picklable ingest counters for snapshots."""
        return {
            "received_events": self.received_events,
            "received_bytes": self.received_bytes,
            "accepted_events": self.accepted_events,
            "accepted_bytes": self.accepted_bytes,
            "rejected_events": dict(sorted(self.rejected_events.items())),
            "rejected_bytes": dict(sorted(self.rejected_bytes.items())),
            "sessions_rejected": dict(
                sorted(self.sessions_rejected.items())
            ),
        }
