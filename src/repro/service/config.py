"""Configuration of the long-lived charging service."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.recovery import RetryPolicy


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`repro.service.ChargingService` needs.

    All time quantities are *stream* seconds (event timestamps), not
    wall-clock; two runs fed the same events make identical charging
    decisions regardless of scheduling.  Attestation is **on by
    default** in the service path: every negotiation retains its CDR
    claims (``BatchSigningConfig(enabled=True)``) and the service seals
    them — interleaved across sessions — into Merkle batches costing one
    RSA signature each.
    """

    seed: int = 17
    #: Charging-cycle length; Algorithm 1 runs once per session per cycle.
    cycle_duration: float = 60.0
    #: CDR flush period within a cycle (gateway reporting interval).
    cdr_period: float = 10.0
    #: The data plan's loss weight ``c``.
    loss_weight: float = 0.5
    #: Bound on each session's ingest queue (backpressure depth).
    queue_depth: int = 256
    #: Concurrent-session admission cap.
    max_sessions: int = 256
    #: Per-session token-bucket rate (bytes of usage per stream second);
    #: ``None`` disables rate limiting.
    rate_bytes_per_s: float | None = None
    #: Token-bucket burst capacity (bytes).
    burst_bytes: int = 1 << 20
    #: Claims / gateway CDRs per sealed Merkle batch (≤ 4096).
    attest_batch: int = 1024
    #: RSA modulus size for both parties' keys.
    key_bits: int = 1024
    #: LRU bound on the verifier's batch-verification cache.
    verify_cache_entries: int = 256
    #: LRU bound on the delivery dedup cache (settled CDR acks).
    dedup_entries: int = 4096
    #: Backoff schedule for CDR redelivery during OFCS outages.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            base_delay=0.5, max_delay=8.0, max_attempts=10
        )
    )
    #: Verifier settlement window (seconds past cycle end); None = off.
    settlement_window: float | None = None
    #: Gateway address stamped into emitted CDRs.
    gateway_address: str = "10.45.0.1"
    #: Traffic direction the service meters.
    direction: str = "downlink"

    def __post_init__(self) -> None:
        if self.cycle_duration <= 0:
            raise ValueError(
                f"cycle duration must be positive: {self.cycle_duration}"
            )
        if not 0 < self.cdr_period <= self.cycle_duration:
            raise ValueError(
                f"cdr period must be in (0, cycle_duration]: "
                f"{self.cdr_period}"
            )
        if not 0.0 <= self.loss_weight <= 1.0:
            raise ValueError(
                f"loss weight c out of [0,1]: {self.loss_weight}"
            )
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {self.queue_depth}")
        if self.max_sessions < 1:
            raise ValueError(
                f"session cap must be >= 1: {self.max_sessions}"
            )
        if not 1 <= self.attest_batch <= 4096:
            raise ValueError(
                f"attestation batch size out of [1, 4096]: "
                f"{self.attest_batch}"
            )
        if self.rate_bytes_per_s is not None and self.rate_bytes_per_s <= 0:
            raise ValueError(
                f"rate limit must be positive: {self.rate_bytes_per_s}"
            )
        if self.burst_bytes < 1:
            raise ValueError(f"burst must be >= 1 byte: {self.burst_bytes}")
        if self.verify_cache_entries < 1:
            raise ValueError(
                f"verify cache bound must be >= 1: "
                f"{self.verify_cache_entries}"
            )
        if self.direction not in ("downlink", "uplink"):
            raise ValueError(
                f"direction must be downlink or uplink: {self.direction!r}"
            )
