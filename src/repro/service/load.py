"""Deterministic multi-session load for the charging service.

``python -m repro run service-load`` and the CI ``service-smoke`` job
drive the service with this module: N concurrent synthetic sessions,
each an independent seeded stream of usage events, submitted through
the real ingest path (admission control, rate limits, backpressure
retries) on one asyncio loop.  The report carries the verdicts the
service tier promises — exact accounting reconciliation, batch-attested
PoCs, and settlement equivalence with a batch replay — in grep-friendly
form (:func:`render_service_report`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.service.config import ServiceConfig
from repro.service.events import RejectReason, SessionSpec, UsageEvent
from repro.service.middleware import ServiceHooks
from repro.service.service import ChargingService
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one synthetic multi-session campaign."""

    sessions: int = 50
    events_per_session: int = 40
    #: Mean stream-time spacing between a session's events (seconds).
    event_interval: float = 2.0
    #: Mean metered bytes per event.
    mean_event_bytes: int = 12_000
    #: Mean fraction of each event's bytes lost in transit.
    loss_rate: float = 0.02
    seed: int = 23
    #: Submit attempts per event before giving up on QUEUE_FULL
    #: backpressure (each attempt yields the loop first).
    max_submit_attempts: int = 50

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"need >= 1 session: {self.sessions}")
        if self.events_per_session < 1:
            raise ValueError(
                f"need >= 1 event per session: {self.events_per_session}"
            )
        if self.event_interval <= 0:
            raise ValueError(
                f"event interval must be positive: {self.event_interval}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate out of [0, 1): {self.loss_rate}")


def generate_session_events(
    profile: LoadProfile, index: int
) -> tuple[SessionSpec, list[UsageEvent]]:
    """Session ``index``'s spec and deterministic event stream.

    Each session draws from its own derived stream, so the load is
    byte-identical run to run and independent of submission order.
    """
    spec = SessionSpec.indexed(index)
    rng = RngStreams(profile.seed).stream("service-load", index)
    events = []
    t = rng.uniform(0.0, profile.event_interval)
    for _ in range(profile.events_per_session):
        sent = max(1, int(profile.mean_event_bytes * rng.lognormvariate(0.0, 0.35)))
        lost = min(
            sent, int(sent * profile.loss_rate * rng.uniform(0.0, 2.0))
        )
        events.append(
            UsageEvent(
                session_id=spec.session_id,
                timestamp=t,
                sent_bytes=sent,
                lost_bytes=lost,
            )
        )
        t += rng.uniform(0.2, 1.8) * profile.event_interval
    return spec, events


@dataclass
class ServiceLoadReport:
    """Everything ``run service-load`` asserts and prints."""

    sessions: int
    events_submitted: int
    events_accepted: int
    bytes_offered: int
    rejected_events: dict[str, int]
    settlements: int
    settled_volume: float
    claims_attested: int
    batches_sealed: int
    sign_ops: int
    batch_attested_pocs: int
    pocs_verified: int
    pocs_rejected: int
    reconciles: bool
    residual: float
    batch_equivalent: bool
    degraded_sessions: int
    wall_seconds: float
    clean_shutdown: bool
    snapshot: dict = field(default_factory=dict)

    @property
    def claims_per_hour(self) -> float:
        """Attested claims per wall-clock hour (the Fig. 17 scale axis)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.claims_attested * 3600.0 / self.wall_seconds


async def drive_load(
    service: ChargingService, profile: LoadProfile
) -> int:
    """Submit every session's stream concurrently; returns submit count.

    One driver task per session; ``QUEUE_FULL`` rejections are retried
    after yielding to the loop (backpressure in action), other
    rejections are final for that event.
    """
    submitted = 0

    async def _drive_one(spec: SessionSpec, events: list[UsageEvent]) -> None:
        nonlocal submitted
        for event in events:
            for _attempt in range(profile.max_submit_attempts):
                submitted += 1
                admission = service.submit(event)
                if admission or admission.reason is not RejectReason.QUEUE_FULL:
                    break
                await asyncio.sleep(0)
            await asyncio.sleep(0)
        await service.close_session(spec.session_id)

    drivers = []
    for index in range(profile.sessions):
        spec, events = generate_session_events(profile, index)
        admission = service.open_session(spec)
        if not admission:
            continue
        drivers.append(asyncio.create_task(_drive_one(spec, events)))
    await asyncio.gather(*drivers)
    return submitted


def run_service_load(
    profile: LoadProfile | None = None,
    config: ServiceConfig | None = None,
    hooks: ServiceHooks | None = None,
) -> ServiceLoadReport:
    """Boot a service, drive the load, shut down, report the verdicts."""
    profile = profile or LoadProfile()
    config = config or ServiceConfig()

    async def _run() -> tuple[ChargingService, int, dict]:
        service = ChargingService(config, hooks=hooks)
        submitted = await drive_load(service, profile)
        snapshot = await service.shutdown()
        return service, submitted, snapshot

    started = time.perf_counter()
    service, submitted, snapshot = asyncio.run(_run())
    wall = time.perf_counter() - started

    table = service.accounting()
    volumes = [
        volume
        for volume in service.settlements.values()
        if volume is not None
    ]
    return ServiceLoadReport(
        sessions=profile.sessions,
        events_submitted=submitted,
        events_accepted=service.ingest.accepted_events,
        bytes_offered=service.ingest.received_bytes,
        rejected_events=dict(sorted(service.ingest.rejected_events.items())),
        settlements=len(service.settlements),
        settled_volume=sum(volumes),
        claims_attested=service.core.claims_attested,
        batches_sealed=service.core.batches_sealed,
        sign_ops=service.core.sign_ops,
        batch_attested_pocs=service.verifier.batch_attested_pocs,
        pocs_verified=service.verifier.pocs_verified,
        pocs_rejected=service.verifier.pocs_rejected,
        reconciles=table.reconciles,
        residual=table.residual,
        batch_equivalent=service.verify_batch_equivalence(),
        degraded_sessions=self_degraded(service),
        wall_seconds=wall,
        clean_shutdown=True,
        snapshot=snapshot,
    )


def self_degraded(service: ChargingService) -> int:
    """Degraded-session count (a helper so the report stays picklable)."""
    return service.degraded.degraded_sessions


def render_service_report(report: ServiceLoadReport) -> str:
    """The grep-friendly text the CLI and CI smoke job read."""
    rejected = (
        ", ".join(
            f"{reason}={count}"
            for reason, count in report.rejected_events.items()
        )
        or "none"
    )
    lines = [
        f"sessions {report.sessions}  "
        f"events submitted {report.events_submitted}  "
        f"accepted {report.events_accepted}",
        f"rejected (by reason): {rejected}",
        f"settlements {report.settlements}  "
        f"total settled volume {report.settled_volume:,.0f} B",
        f"claims attested {report.claims_attested} in "
        f"{report.batches_sealed} Merkle batches "
        f"({report.sign_ops} public-key sign ops — one per batch)",
        f"batch-attested PoCs: {report.batch_attested_pocs} "
        f"(verified {report.pocs_verified}, "
        f"rejected {report.pocs_rejected})",
        f"degraded sessions: {report.degraded_sessions}",
        f"service accounting reconciles exactly: "
        f"{'yes' if report.reconciles else 'NO'} "
        f"(residual {report.residual:.0f} B)",
        f"settlements identical to equivalent batch run: "
        f"{'yes' if report.batch_equivalent else 'NO'}",
        f"throughput: {report.claims_per_hour:,.0f} claims/hr "
        f"({report.wall_seconds:.2f}s wall)",
        f"clean shutdown: {'yes' if report.clean_shutdown else 'NO'}",
    ]
    return "\n".join(lines)
