"""The synchronous charging core the service multiplexes.

All charging *decisions* live here, in plain synchronous code driven by
event timestamps: cycle boundaries, CDR flushes, Algorithm 1
settlements, Merkle-batch attestation, and reliable CDR delivery to the
OFCS.  The asyncio layer (:mod:`repro.service.service`) is a thin
multiplexer around this class; a batch replay
(:func:`replay_settlements`) folds the same events through a fresh core
directly.  Because every decision derives from stream time and seeded
RNG streams — never the wall clock or scheduling order — the two
produce identical settlements for the same per-session event streams.

Attestation is on by default: every per-cycle negotiation runs with
``BatchSigningConfig(enabled=True)``, the operator's retained CDR
claims are pooled *across sessions* per cycle, and both the claim pool
and the stream of delivered gateway CDRs are sealed into Merkle batches
costing one RSA private op each (:func:`repro.crypto.merkle.sign_batch`)
— the Fig. 17 amortization at service scale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.charging.cdr import ChargingDataRecord
from repro.charging.cycle import ChargingCycle, CycleSchedule
from repro.core.plan import DataPlan
from repro.core.protocol import (
    BatchSigningConfig,
    NegotiationAgent,
    ProtocolOutcome,
    run_negotiation,
    sign_cdr_batch,
)
from repro.core.records import UsageView
from repro.core.messages import TlcCdr
from repro.core.strategies import OptimalStrategy, Role
from repro.crypto.keys import KeyPair
from repro.crypto.merkle import BatchSignature, sign_batch
from repro.crypto.nonces import NonceFactory
from repro.crypto.rsa import keypair_for_seed
from repro.faults.recovery import DedupCache
from repro.lte.identifiers import Imsi
from repro.lte.ofcs import OfflineChargingSystem
from repro.service.config import ServiceConfig
from repro.service.events import SessionSpec, UsageEvent
from repro.service.middleware import ServiceHooks, SessionFault
from repro.sim.rng import RngStreams, derive_seed


@dataclass
class SessionState:
    """One session's charging state inside the core."""

    spec: SessionSpec
    cycle: ChargingCycle
    status: str = "active"  # active | degraded | closed
    degraded_reason: str = ""
    next_sequence: int = 1
    # Current-cycle accumulators (integers; reset at each boundary).
    cycle_sent: int = 0
    cycle_delivered: int = 0
    cycle_events: int = 0
    # Current CDR window.
    window_start: float = 0.0
    window_sent: int = 0
    window_first: float = 0.0
    window_last: float = 0.0
    # Lifetime totals.
    events_processed: int = 0
    sent_bytes: int = 0
    delivered_bytes: int = 0
    lost_bytes: int = 0
    last_timestamp: float = -1.0
    settled_cycles: int = 0
    #: The accepted events this session processed, in order — the input
    #: to an equivalent batch replay.
    history: list[UsageEvent] = field(default_factory=list)


@dataclass(frozen=True)
class SettledCycle:
    """One session-cycle's Algorithm 1 outcome."""

    session_id: str
    cycle: ChargingCycle
    outcome: ProtocolOutcome
    #: The operator's retained CDR claims (BatchSigningConfig path).
    operator_claims: tuple[TlcCdr, ...]

    @property
    def volume(self) -> float | None:
        return self.outcome.volume


@dataclass(frozen=True)
class SealedClaimBatch:
    """Interleaved multi-session TLC CDR claims under one signature."""

    cycle: ChargingCycle
    claims: tuple[TlcCdr, ...]
    batch: BatchSignature


@dataclass(frozen=True)
class SealedRecordBatch:
    """Delivered gateway CDRs (across sessions) under one signature."""

    records: tuple[ChargingDataRecord, ...]
    batch: BatchSignature


#: One drained output of the core: ("settlement" | "claim_batch" |
#: "record_batch", payload).
CoreOutput = tuple[str, object]


class ChargingCore:
    """Deterministic multi-session charging over a usage-event stream."""

    def __init__(
        self,
        config: ServiceConfig,
        hooks: ServiceHooks | None = None,
    ) -> None:
        self.config = config
        self.hooks = hooks or ServiceHooks()
        self.schedule = CycleSchedule(
            origin=0.0, duration=config.cycle_duration
        )
        self.ofcs = OfflineChargingSystem()
        rngs = RngStreams(config.seed)
        self._rngs = rngs
        # Jitter comes from a *derived* stream, never module-global
        # random: fault-recovery timing is as byte-identical as the
        # charging decisions themselves.
        self._retry_rng = rngs.stream("service", "cdr-retry")
        self.edge_keys: KeyPair = keypair_for_seed(
            derive_seed(config.seed, "service", "edge-key"), config.key_bits
        )
        self.operator_keys: KeyPair = keypair_for_seed(
            derive_seed(config.seed, "service", "operator-key"),
            config.key_bits,
        )
        self._sessions: dict[str, SessionState] = {}
        self._nonces: dict[str, NonceFactory] = {}
        # Reliable delivery: retry heap + settled-ack dedup (LRU-bounded
        # — the long-lived process must not grow without bound).
        self._dedup = DedupCache(max_entries=config.dedup_entries)
        self._retries: list[tuple[float, int, ChargingDataRecord, int]] = []
        self._retry_tiebreak = 0
        self.cdrs_emitted = 0
        self.cdrs_delivered = 0
        self.cdr_retries = 0
        self.cdrs_abandoned = 0
        self.abandoned_cdr_bytes = 0
        self.redeliveries_suppressed = 0
        # Attestation state.
        self._pending_claims: dict[int, list[TlcCdr]] = {}
        self._claim_cycles: dict[int, ChargingCycle] = {}
        self._pending_records: list[ChargingDataRecord] = []
        self.claims_attested = 0
        self.batches_sealed = 0
        self.sign_ops = 0
        # Stream accounting (integers).
        self.processed_events = 0
        self.processed_sent_bytes = 0
        self.delivered_bytes = 0
        self.transit_lost_bytes = 0
        #: Drained by the service layer after every call.
        self.outbox: list[CoreOutput] = []

    # ------------------------------------------------------------------
    # session lifecycle

    def open_session(self, spec: SessionSpec) -> SessionState:
        if spec.session_id in self._sessions:
            raise ValueError(f"session already open: {spec.session_id}")
        state = SessionState(spec=spec, cycle=self.schedule.cycle(0))
        self._sessions[spec.session_id] = state
        self._nonces[spec.session_id] = NonceFactory(
            self._rngs.stream("service", "nonces", spec.session_id)
        )
        return state

    def session(self, session_id: str) -> SessionState:
        return self._sessions[session_id]

    def sessions(self) -> list[SessionState]:
        return list(self._sessions.values())

    def close_session(self, session_id: str) -> None:
        """Flush and settle the session's open cycle, then close it."""
        state = self._sessions[session_id]
        if state.status == "closed":
            return
        if state.status == "active":
            self._flush_cdr(state)
            self._settle_cycle(state)
        state.status = "closed"

    def mark_degraded(self, session_id: str, reason: str) -> None:
        """Fault middleware: stop charging this session, keep the rest."""
        state = self._sessions[session_id]
        state.status = "degraded"
        state.degraded_reason = reason

    # ------------------------------------------------------------------
    # the event path

    def process(self, event: UsageEvent) -> None:
        """Advance one session by one usage event (stream time)."""
        state = self._sessions[event.session_id]
        if state.status != "active":
            raise SessionFault(
                f"event for {state.status} session {event.session_id}"
            )
        if event.timestamp < state.last_timestamp:
            raise SessionFault(
                f"stream time went backwards for {event.session_id}: "
                f"{event.timestamp} < {state.last_timestamp}"
            )
        if self.hooks.on_event is not None:
            self.hooks.on_event(state, event)

        now = event.timestamp
        # Cross any cycle boundaries the stream slept through.
        while now >= state.cycle.end:
            self._flush_cdr(state)
            self._settle_cycle(state)
            state.cycle = self.schedule.cycle(state.cycle.index + 1)
            state.cycle_sent = 0
            state.cycle_delivered = 0
            state.cycle_events = 0
            state.window_start = state.cycle.start
            state.window_sent = 0
        # Periodic CDR flush inside the cycle.
        if (
            state.window_sent
            and now >= state.window_start + self.config.cdr_period
        ):
            self._flush_cdr(state)
        if not state.window_sent:
            state.window_start = max(state.window_start, state.cycle.start)

        if state.window_sent == 0:
            state.window_first = now
        state.window_last = now
        state.window_sent += event.sent_bytes
        state.cycle_sent += event.sent_bytes
        state.cycle_delivered += event.delivered_bytes
        state.cycle_events += 1
        state.events_processed += 1
        state.sent_bytes += event.sent_bytes
        state.delivered_bytes += event.delivered_bytes
        state.lost_bytes += event.lost_bytes
        state.last_timestamp = now
        state.history.append(event)

        self.processed_events += 1
        self.processed_sent_bytes += event.sent_bytes
        self.delivered_bytes += event.delivered_bytes
        self.transit_lost_bytes += event.lost_bytes

        self.pump_retries(now)

    # ------------------------------------------------------------------
    # CDR flush + reliable delivery

    def _flush_cdr(self, state: SessionState) -> None:
        if state.window_sent == 0:
            return
        uplink = downlink = 0
        if self.config.direction == "downlink":
            downlink = state.window_sent
        else:
            uplink = state.window_sent
        record = ChargingDataRecord(
            served_imsi=Imsi(state.spec.imsi),
            gateway_address=self.config.gateway_address,
            charging_id=state.spec.charging_id,
            sequence_number=state.next_sequence,
            time_of_first_usage=state.window_first,
            time_of_last_usage=state.window_last,
            uplink_bytes=uplink,
            downlink_bytes=downlink,
        )
        state.next_sequence += 1
        state.window_sent = 0
        state.window_start = state.window_last
        self.cdrs_emitted += 1
        self._deliver(record, state.window_last, attempt=0)

    def _deliver(
        self, record: ChargingDataRecord, now: float, attempt: int
    ) -> None:
        key = (record.charging_id, record.sequence_number)
        if key in self._dedup:
            # A retry raced a successful delivery; the cached ack
            # answers it without touching the OFCS again.
            self._dedup.replay(key)
            self.redeliveries_suppressed += 1
            return
        if self.ofcs.ingest(record):
            self._dedup.remember(key, True)
            self.cdrs_delivered += 1
            self._pending_records.append(record)
            if len(self._pending_records) >= self.config.attest_batch:
                self._seal_record_batch()
            return
        # OFCS dark: spool and retry on the backoff schedule, jitter
        # drawn from the derived stream (satellite: no module-global
        # random anywhere in the retry path).
        if self.config.retry.exhausted(attempt):
            self.cdrs_abandoned += 1
            self.abandoned_cdr_bytes += record.total_bytes
            return
        self.cdr_retries += 1
        due = now + self.config.retry.delay(attempt, self._retry_rng)
        self._retry_tiebreak += 1
        heapq.heappush(
            self._retries, (due, self._retry_tiebreak, record, attempt + 1)
        )

    def pump_retries(self, now: float) -> None:
        """Re-attempt every spooled CDR whose backoff expired."""
        while self._retries and self._retries[0][0] <= now:
            _due, _tie, record, attempt = heapq.heappop(self._retries)
            self._deliver(record, now, attempt)

    @property
    def unacked_cdrs(self) -> int:
        """CDRs spooled for retry, not yet delivered or abandoned."""
        return len(self._retries)

    # ------------------------------------------------------------------
    # settlement (Algorithm 1, attestation on)

    def _agents(
        self, state: SessionState, plan: DataPlan
    ) -> tuple[NegotiationAgent, NegotiationAgent]:
        view = UsageView(
            sent_estimate=float(state.cycle_sent),
            received_estimate=float(state.cycle_delivered),
        )
        nonce_factory = self._nonces[state.spec.session_id]
        batch_config = BatchSigningConfig(
            enabled=True, max_batch=self.config.attest_batch
        )
        operator = NegotiationAgent(
            role=Role.OPERATOR,
            strategy=OptimalStrategy(Role.OPERATOR, view),
            plan=plan,
            private_key=self.operator_keys.private,
            peer_public_key=self.edge_keys.public,
            nonce_factory=nonce_factory,
            app_id=state.spec.app_id,
            batch_config=batch_config,
        )
        edge = NegotiationAgent(
            role=Role.EDGE,
            strategy=OptimalStrategy(Role.EDGE, view),
            plan=plan,
            private_key=self.edge_keys.private,
            peer_public_key=self.operator_keys.public,
            nonce_factory=nonce_factory,
            app_id=state.spec.app_id,
            batch_config=batch_config,
        )
        return operator, edge

    def _settle_cycle(self, state: SessionState) -> None:
        if state.cycle_events == 0:
            return  # an idle cycle has nothing to negotiate
        plan = DataPlan(
            cycle=state.cycle, loss_weight=self.config.loss_weight
        )
        operator, edge = self._agents(state, plan)
        outcome = run_negotiation(operator, edge)
        claims = tuple(operator.batched_cdrs)
        settlement = SettledCycle(
            session_id=state.spec.session_id,
            cycle=state.cycle,
            outcome=outcome,
            operator_claims=claims,
        )
        state.settled_cycles += 1
        self.outbox.append(("settlement", settlement))
        # Pool the operator's retained claims across sessions: one
        # Merkle signature will cover the whole interleaved pool.
        if claims:
            index = state.cycle.index
            self._claim_cycles[index] = state.cycle
            pool = self._pending_claims.setdefault(index, [])
            pool.extend(claims)
            if len(pool) >= self.config.attest_batch:
                self._seal_claim_batch(index)

    # ------------------------------------------------------------------
    # Merkle-batch attestation

    def _seal_claim_batch(self, cycle_index: int) -> None:
        pool = self._pending_claims.pop(cycle_index, [])
        if not pool:
            return
        claims = tuple(pool[: self.config.attest_batch])
        rest = pool[self.config.attest_batch:]
        if rest:
            self._pending_claims[cycle_index] = rest
        batch = sign_cdr_batch(self.operator_keys.private, claims)
        self.sign_ops += 1
        self.batches_sealed += 1
        self.claims_attested += len(claims)
        self.outbox.append(
            (
                "claim_batch",
                SealedClaimBatch(
                    cycle=self._claim_cycles[cycle_index],
                    claims=claims,
                    batch=batch,
                ),
            )
        )

    def _seal_record_batch(self) -> None:
        if not self._pending_records:
            return
        records = tuple(self._pending_records[: self.config.attest_batch])
        del self._pending_records[: self.config.attest_batch]
        batch = sign_batch(
            self.operator_keys.private,
            [record.to_bytes() for record in records],
        )
        self.sign_ops += 1
        self.batches_sealed += 1
        self.claims_attested += len(records)
        self.outbox.append(
            ("record_batch", SealedRecordBatch(records=records, batch=batch))
        )

    # ------------------------------------------------------------------
    # teardown

    def finalize(self) -> None:
        """Close out the stream: drain retries, seal partial batches."""
        for state in self._sessions.values():
            if state.status == "active":
                self.close_session(state.spec.session_id)
        # Drain the retry spool to a verdict: each spooled CDR is
        # either delivered (OFCS back up) or abandoned at its policy's
        # attempt budget — never left dangling.
        while self._retries:
            _due, _tie, record, attempt = heapq.heappop(self._retries)
            self._deliver(record, float(_due), attempt)
        while self._pending_claims:
            self._seal_claim_batch(next(iter(self._pending_claims)))
        while self._pending_records:
            self._seal_record_batch()

    def drain_outbox(self) -> list[CoreOutput]:
        """Hand the accumulated outputs to the caller (service layer)."""
        out = self.outbox
        self.outbox = []
        return out

    def delivery_stats(self) -> dict[str, int]:
        """Picklable reliable-delivery counters."""
        return {
            "emitted": self.cdrs_emitted,
            "delivered": self.cdrs_delivered,
            "retries": self.cdr_retries,
            "abandoned": self.cdrs_abandoned,
            "abandoned_bytes": self.abandoned_cdr_bytes,
            "suppressed_redeliveries": self.redeliveries_suppressed,
            "unacked": self.unacked_cdrs,
            "dedup_hits": self._dedup.hits,
            "dedup_evictions": self._dedup.evictions,
        }


def replay_settlements(
    config: ServiceConfig,
    specs: list[SessionSpec],
    events_by_session: dict[str, list[UsageEvent]],
    interleave: Callable[[dict[str, list[UsageEvent]]], list[UsageEvent]]
    | None = None,
) -> dict[tuple[str, int], float | None]:
    """Settle the same event streams through a fresh core, batch-style.

    The equivalence oracle for the service tier: feed each session's
    accepted events — in their per-session order — through a new
    :class:`ChargingCore` synchronously and return every settlement's
    volume keyed by ``(session_id, cycle_index)``.  Per-session streams
    are independent, so any global interleaving yields the same result;
    the default replays sessions one after another.
    """
    core = ChargingCore(config)
    for spec in specs:
        core.open_session(spec)
    if interleave is not None:
        ordered = interleave(events_by_session)
        for event in ordered:
            core.process(event)
    else:
        for spec in specs:
            for event in events_by_session.get(spec.session_id, ()):
                core.process(event)
    core.finalize()
    out: dict[tuple[str, int], float | None] = {}
    for kind, payload in core.drain_outbox():
        if kind == "settlement":
            settled: SettledCycle = payload  # type: ignore[assignment]
            out[(settled.session_id, settled.cycle.index)] = settled.volume
    return out
