"""Fault middleware: per-session failures degrade, the service lives.

A long-lived service cannot let one misbehaving session — a stream
whose clock runs backwards, a hook-injected fault, a bug in a charging
path — take down charging for every other tenant.  The exception
barrier in :meth:`repro.service.ChargingService._session_worker` wraps
every core call; anything a session raises is converted by
:class:`DegradedLedger` into *degraded-session* state:

- the session stops being charged (its worker drains and rejects),
- the ingest front end rejects its future events with
  :attr:`repro.service.events.RejectReason.SESSION_DEGRADED`,
- every accepted-but-unprocessed byte is tallied as a
  ``session_degraded`` drop in the accounting table, so the
  ``counted − Σ losses == received`` identity survives the fault.

:class:`ServiceHooks` is the injection point the fault suite uses: its
callbacks run inside the core's event path, so a test (or a
:mod:`repro.faults` plan adapter) can raise mid-stream, toggle an OFCS
outage, or observe settlements without patching service internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


class ServiceError(RuntimeError):
    """A charging-service failure outside any one session."""


class SessionFault(ServiceError):
    """A per-session failure; the middleware degrades only that session."""


@dataclass
class ServiceHooks:
    """Callbacks threaded into the charging core's event path.

    ``on_event(state, event)`` runs before an event is accumulated —
    raising here is the canonical way the fault suite injects a
    per-session failure.  ``on_settle(settlement)`` observes every
    Algorithm 1 outcome as it happens.
    """

    on_event: Callable[[Any, Any], None] | None = None
    on_settle: Callable[[Any], None] | None = None


@dataclass
class DegradedLedger:
    """What the exception barrier recorded, per degraded session."""

    reasons: dict[str, str] = field(default_factory=dict)
    dropped_events: int = 0
    dropped_bytes: int = 0

    def record_fault(self, session_id: str, exc: BaseException) -> None:
        """First fault wins; later ones do not rewrite the reason."""
        self.reasons.setdefault(
            session_id, f"{type(exc).__name__}: {exc}"
        )

    def record_drop(self, sent_bytes: int) -> None:
        """Count one accepted-but-never-charged event."""
        self.dropped_events += 1
        self.dropped_bytes += sent_bytes

    @property
    def degraded_sessions(self) -> int:
        return len(self.reasons)

    def as_dict(self) -> dict:
        """Picklable snapshot for service status output."""
        return {
            "degraded_sessions": self.degraded_sessions,
            "dropped_events": self.dropped_events,
            "dropped_bytes": self.dropped_bytes,
            "reasons": dict(sorted(self.reasons.items())),
        }
