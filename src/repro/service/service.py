"""The long-lived asyncio charging service.

:class:`ChargingService` multiplexes many concurrent sessions over one
event loop: the ingest front end admits events into bounded per-session
queues, one worker task per session drains its queue into the shared
:class:`repro.service.core.ChargingCore`, and every core output
(settlement, claim batch, record batch) flows straight into the
:class:`repro.service.verifier.VerifierService`.  Backpressure is the
queue bound itself — a full queue surfaces as an explicit
``QUEUE_FULL`` rejection at :meth:`submit`, never as silent buffering.

The exception barrier in :meth:`_session_worker` is the fault
middleware: whatever a session raises degrades *that session* (its
remaining queued bytes are tallied as ``session_degraded`` drops) and
the service keeps charging everyone else.

Charging decisions depend only on event timestamps and seeded streams,
so :meth:`settlements` equals a synchronous batch replay
(:func:`repro.service.core.replay_settlements`) of the same accepted
events — the service's equivalence contract, asserted by
:meth:`verify_batch_equivalence`.
"""

from __future__ import annotations

import asyncio

from repro.service.config import ServiceConfig
from repro.service.core import ChargingCore, replay_settlements
from repro.service.events import (
    Admission,
    SessionSpec,
    UsageEvent,
)
from repro.service.ingest import END_OF_STREAM, UsageIngest
from repro.service.middleware import DegradedLedger, ServiceHooks
from repro.service.verifier import VerifierService
from repro.telemetry.accounting import AccountingTable, LayerAccount


class ChargingService:
    """Charging-as-a-service: ingest → charge → verify, continuously."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        hooks: ServiceHooks | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.ingest = UsageIngest(self.config)
        self.core = ChargingCore(self.config, hooks=hooks)
        self.verifier = VerifierService(
            edge_key=self.core.edge_keys.public,
            operator_key=self.core.operator_keys.public,
            loss_weight=self.config.loss_weight,
            cache_entries=self.config.verify_cache_entries,
            settlement_window=self.config.settlement_window,
        )
        self.degraded = DegradedLedger()
        self._workers: dict[str, asyncio.Task] = {}
        self._settlements: dict[tuple[str, int], float | None] = {}
        self._shut_down = False

    # ------------------------------------------------------------------
    # session lifecycle

    def open_session(self, spec: SessionSpec) -> Admission:
        """Admit a session and start its worker task."""
        if self._shut_down:
            raise RuntimeError("service is shut down")
        admission = self.ingest.open_session(spec)
        if admission:
            self.core.open_session(spec)
            self._workers[spec.session_id] = asyncio.create_task(
                self._session_worker(spec.session_id),
                name=f"charge-{spec.session_id}",
            )
        return admission

    def submit(self, event: UsageEvent) -> Admission:
        """Offer one usage event (explicit verdict, never a silent drop)."""
        return self.ingest.submit(event)

    async def close_session(self, session_id: str) -> None:
        """End a session's stream and wait for it to settle."""
        await self.ingest.end_session(session_id)
        worker = self._workers.get(session_id)
        if worker is not None:
            await worker

    async def drain(self) -> None:
        """Wait for every currently open session to finish."""
        for session_id in list(self.ingest.open_session_ids()):
            await self.ingest.end_session(session_id)
        await asyncio.gather(*self._workers.values())

    async def shutdown(self) -> dict:
        """Graceful stop: drain sessions, seal batches, verify the rest.

        Idempotent; returns the final :meth:`snapshot`.
        """
        if not self._shut_down:
            self._shut_down = True
            self.ingest.closed = True
            await self.drain()
            self.core.finalize()
            self._route_outputs()
        return self.snapshot()

    # ------------------------------------------------------------------
    # the per-session worker (with the fault barrier)

    async def _session_worker(self, session_id: str) -> None:
        queue = self.ingest.queue_for(session_id)
        degraded = False
        while True:
            item = await queue.get()
            if item is END_OF_STREAM:
                break
            if degraded:
                # Accepted before the fault, never charged: tally so
                # the accounting identity still closes exactly.
                self.degraded.record_drop(item.sent_bytes)
                continue
            try:
                self.core.process(item)
            except Exception as exc:  # noqa: BLE001 — the fault barrier
                degraded = True
                self.degraded.record_fault(session_id, exc)
                self.degraded.record_drop(item.sent_bytes)
                self.ingest.mark_degraded(session_id)
                self.core.mark_degraded(session_id, str(exc))
            self._route_outputs()
            # One yield per event keeps sessions interleaved instead of
            # letting a hot producer monopolize the loop.
            await asyncio.sleep(0)
        if not degraded:
            try:
                self.core.close_session(session_id)
            except Exception as exc:  # noqa: BLE001 — the fault barrier
                self.degraded.record_fault(session_id, exc)
                self.ingest.mark_degraded(session_id)
                self.core.mark_degraded(session_id, str(exc))
        self._route_outputs()

    def _route_outputs(self) -> None:
        for kind, payload in self.core.drain_outbox():
            if kind == "settlement":
                self._settlements[
                    (payload.session_id, payload.cycle.index)
                ] = payload.volume
                hooks = self.core.hooks
                if hooks.on_settle is not None:
                    hooks.on_settle(payload)
            self.verifier.accept(kind, payload)

    # ------------------------------------------------------------------
    # accounting + equivalence

    def accounting(self) -> AccountingTable:
        """The service tier's exact byte-accounting table.

        ``counted`` is every byte offered at the front door; the loss
        layers are the ingest's per-reason rejections, the queue's
        degraded drops (plus still-queued residue mid-run), and the
        stream's transit loss; ``received`` is what the receiver-side
        meter saw.  All integers — the identity holds exactly.
        """
        ingest = self.ingest
        core = self.core
        rows = [
            LayerAccount(
                layer="svc-ingest",
                bytes_in=ingest.received_bytes,
                bytes_out=ingest.accepted_bytes,
                dropped=dict(sorted(ingest.rejected_bytes.items())),
            ),
            LayerAccount(
                layer="svc-queue",
                bytes_in=ingest.accepted_bytes,
                bytes_out=core.processed_sent_bytes,
                dropped=(
                    {"session_degraded": self.degraded.dropped_bytes}
                    if self.degraded.dropped_bytes
                    else {}
                ),
            ),
            LayerAccount(
                layer="svc-transit",
                bytes_in=core.processed_sent_bytes,
                bytes_out=core.delivered_bytes,
                dropped=(
                    {"transit_loss": core.transit_lost_bytes}
                    if core.transit_lost_bytes
                    else {}
                ),
            ),
        ]
        return AccountingTable(
            direction=self.config.direction,
            sender_layer="svc-ingest",
            receiver_layer="receiver-meter",
            counted=ingest.received_bytes,
            received=core.delivered_bytes,
            rows=rows,
        )

    @property
    def settlements(self) -> dict[tuple[str, int], float | None]:
        """Every settled (session, cycle) and its negotiated volume."""
        return dict(self._settlements)

    def verify_batch_equivalence(self) -> bool:
        """Replay accepted events batch-style; settlements must match.

        Degraded sessions are excluded: their streams were truncated by
        the fault barrier, so no equivalent fault-free batch exists.
        """
        specs = []
        events_by_session = {}
        for state in self.core.sessions():
            if state.spec.session_id in self.degraded.reasons:
                continue
            specs.append(state.spec)
            events_by_session[state.spec.session_id] = list(state.history)
        replayed = replay_settlements(
            self.config, specs, events_by_session
        )
        service_side = {
            key: volume
            for key, volume in self._settlements.items()
            if key[0] not in self.degraded.reasons
        }
        return replayed == service_side

    # ------------------------------------------------------------------
    # status

    def session_status(self, session_id: str) -> dict:
        """Merged core + verifier view of one session."""
        status = self.verifier.session_status(session_id)
        try:
            state = self.core.session(session_id)
        except KeyError:
            status.setdefault("known", False)
            return status
        status.update(
            known=True,
            status=state.status,
            degraded_reason=state.degraded_reason,
            events_processed=state.events_processed,
            sent_bytes=state.sent_bytes,
            delivered_bytes=state.delivered_bytes,
        )
        return status

    def snapshot(self) -> dict:
        """Picklable service-wide metrics (the ``--metrics-out`` body)."""
        table = self.accounting()
        return {
            "config": {
                "seed": self.config.seed,
                "cycle_duration": self.config.cycle_duration,
                "cdr_period": self.config.cdr_period,
                "attest_batch": self.config.attest_batch,
                "key_bits": self.config.key_bits,
            },
            "ingest": self.ingest.stats(),
            "delivery": self.core.delivery_stats(),
            "attestation": {
                "claims_attested": self.core.claims_attested,
                "batches_sealed": self.core.batches_sealed,
                "sign_ops": self.core.sign_ops,
            },
            "verifier": self.verifier.stats(),
            "degraded": self.degraded.as_dict(),
            "settlements": len(self._settlements),
            "accounting": table.as_dict(),
        }
