"""Charging-as-a-service: the long-lived async online charging gateway.

The package splits the service tier into four layers, mirroring the
ingest → charge → verify pipeline described in docs/architecture.md:

- :mod:`repro.service.ingest` — admission control, bounded per-session
  queues, stream-time token buckets, reject-with-reason accounting;
- :mod:`repro.service.core` — the synchronous charging core (cycle
  rollover, CDR flushes, reliable delivery, Merkle-batch attestation)
  multiplexed across sessions;
- :mod:`repro.service.verifier` — Algorithm 2 as a service, with an
  LRU verification cache and a two-phase CDR query surface;
- :mod:`repro.service.service` — the asyncio shell tying them together
  behind a per-session fault barrier.

:mod:`repro.service.load` drives synthetic multi-session campaigns for
``python -m repro run service-load`` and the CI smoke job.
"""

from repro.service.config import ServiceConfig
from repro.service.core import (
    ChargingCore,
    SealedClaimBatch,
    SealedRecordBatch,
    SettledCycle,
    replay_settlements,
)
from repro.service.events import (
    Admission,
    RejectReason,
    SessionSpec,
    UsageEvent,
)
from repro.service.ingest import END_OF_STREAM, TokenBucket, UsageIngest
from repro.service.load import (
    LoadProfile,
    ServiceLoadReport,
    generate_session_events,
    render_service_report,
    run_service_load,
)
from repro.service.middleware import (
    DegradedLedger,
    ServiceError,
    ServiceHooks,
    SessionFault,
)
from repro.service.service import ChargingService
from repro.service.verifier import (
    CdrPage,
    CdrRef,
    LoadedCdr,
    VerificationCache,
    VerifierService,
)

__all__ = [
    "Admission",
    "CdrPage",
    "CdrRef",
    "ChargingCore",
    "ChargingService",
    "DegradedLedger",
    "END_OF_STREAM",
    "LoadProfile",
    "LoadedCdr",
    "RejectReason",
    "SealedClaimBatch",
    "SealedRecordBatch",
    "ServiceConfig",
    "ServiceError",
    "ServiceHooks",
    "ServiceLoadReport",
    "SessionFault",
    "SessionSpec",
    "SettledCycle",
    "TokenBucket",
    "UsageEvent",
    "UsageIngest",
    "VerificationCache",
    "VerifierService",
    "generate_session_events",
    "render_service_report",
    "replay_settlements",
    "run_service_load",
]
