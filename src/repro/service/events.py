"""The service tier's wire-facing data model.

A long-lived charging service sees the world as a stream of
:class:`UsageEvent` records — one per metering report from a session's
gateway path — rather than as packets inside a simulation.  Each event
carries the sender-side metered bytes and the bytes known lost in
transit, so the service can maintain both parties' usage views and the
``counted − Σ losses == received`` accounting identity without replaying
the packet path.

Admission is always explicit: :class:`Admission` either accepts an event
or rejects it with a :class:`RejectReason`.  There is no silent drop
anywhere in the ingest path — every rejected byte lands in the service's
accounting table under its reason, which is what keeps the identity
exact under overload.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass


class RejectReason(enum.Enum):
    """Why the ingest front end refused an event (or a session)."""

    #: ``open_session`` beyond the configured concurrent-session cap.
    SESSION_LIMIT = "session_limit"
    #: Event for a session id the service has never opened.
    UNKNOWN_SESSION = "unknown_session"
    #: ``open_session`` for an id that is already open.
    DUPLICATE_SESSION = "duplicate_session"
    #: The session's bounded queue is full (backpressure to the caller).
    QUEUE_FULL = "queue_full"
    #: The session's token bucket is empty (rate limiting).
    RATE_LIMITED = "rate_limited"
    #: The session was degraded by the fault middleware.
    SESSION_DEGRADED = "session_degraded"
    #: The session (or the whole service) is closed to new events.
    CLOSED = "closed"


@dataclass(frozen=True)
class Admission:
    """The ingest verdict for one event or session operation."""

    accepted: bool
    reason: RejectReason | None = None

    def __bool__(self) -> bool:
        return self.accepted

    @classmethod
    def ok(cls) -> "Admission":
        return cls(accepted=True)

    @classmethod
    def reject(cls, reason: RejectReason) -> "Admission":
        return cls(accepted=False, reason=reason)


@dataclass(frozen=True)
class UsageEvent:
    """One metering report from a session's data path.

    ``sent_bytes`` is what the sender-side meter counted over the report
    interval ending at ``timestamp`` (stream time, seconds);
    ``lost_bytes`` is the portion known lost between the meters, so the
    receiver-side meter saw ``sent_bytes − lost_bytes``.  Timestamps are
    *stream* time: all charging-cycle and CDR-flush decisions derive
    from them, never from the wall clock, which is what makes a service
    run settle identically to a batch replay of the same events.
    """

    session_id: str
    timestamp: float
    sent_bytes: int
    lost_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ValueError("usage event needs a session id")
        if self.timestamp < 0:
            raise ValueError(f"negative event timestamp: {self.timestamp}")
        if self.sent_bytes < 0:
            raise ValueError(f"negative sent bytes: {self.sent_bytes}")
        if not 0 <= self.lost_bytes <= self.sent_bytes:
            raise ValueError(
                f"lost bytes {self.lost_bytes} outside "
                f"[0, {self.sent_bytes}]"
            )

    @property
    def delivered_bytes(self) -> int:
        """Bytes the receiver-side meter counted for this report."""
        return self.sent_bytes - self.lost_bytes


@dataclass(frozen=True)
class SessionSpec:
    """Identity of one charging session (one edge app ↔ one subscriber)."""

    session_id: str
    imsi: str

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ValueError("session spec needs a session id")
        if not self.imsi.isdigit() or not 6 <= len(self.imsi) <= 15:
            raise ValueError(f"not a plausible IMSI: {self.imsi!r}")

    @property
    def charging_id(self) -> int:
        """A stable 32-bit charging id derived from the session id."""
        return zlib.crc32(self.session_id.encode("utf-8")) & 0xFFFFFFFF

    @property
    def app_id(self) -> str:
        """The TLC app id this session negotiates under (≤ 12 ASCII)."""
        return f"s{self.charging_id:08x}"

    @classmethod
    def indexed(cls, index: int, prefix: str = "sess") -> "SessionSpec":
        """The canonical spec for synthetic session number ``index``."""
        if index < 0:
            raise ValueError(f"negative session index: {index}")
        return cls(
            session_id=f"{prefix}-{index:05d}",
            imsi=f"00101{index:010d}",
        )
