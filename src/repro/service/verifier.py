"""The verification tier: Algorithm 2 as a continuously running service.

:class:`VerifierService` consumes everything the charging core emits —
settled PoCs, interleaved multi-session claim batches, and gateway CDR
batches — and verifies it as it arrives, cheaply enough to run inline:

- PoCs go through the full Algorithm 2
  (:class:`repro.core.verifier.PublicVerifier`) with its replay cache;
- Merkle batches cost one RSA public op each, and even that op is
  amortized by :class:`VerificationCache`, an LRU keyed by **batch
  root** — re-presenting an already-verified batch (a query, an audit
  re-check, a redelivery) is a dictionary hit, not an RSA op;
- Merkle inclusion proofs for single-CDR queries are built lazily and
  cached under the same root key.

The query surface (:meth:`get_poc`, :meth:`get_cdrs`,
:meth:`session_status`) serves large result sets in two phases:
:meth:`get_cdrs` returns light-weight reference pages (sequence numbers
and sizes, with a cursor), and :meth:`load_cdr` fetches one full record
— with its inclusion proof — on demand.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.charging.cdr import ChargingDataRecord
from repro.core.plan import DataPlan
from repro.core.verifier import PublicVerifier, VerificationResult
from repro.crypto.keys import PublicKey
from repro.crypto.merkle import (
    BatchSignature,
    merkle_proof,
    verify_batch,
    verify_merkle_proof,
)
from repro.service.core import (
    SealedClaimBatch,
    SealedRecordBatch,
    SettledCycle,
)


class VerificationCache:
    """LRU verdict cache keyed by Merkle batch root."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"cache bound must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self._verdicts: OrderedDict[bytes, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, root: bytes) -> bool | None:
        verdict = self._verdicts.get(root)
        if verdict is None:
            self.misses += 1
            return None
        self._verdicts.move_to_end(root)
        self.hits += 1
        return verdict

    def put(self, root: bytes, verdict: bool) -> None:
        self._verdicts[root] = verdict
        self._verdicts.move_to_end(root)
        if len(self._verdicts) > self.max_entries:
            self._verdicts.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._verdicts),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class CdrRef:
    """Phase-1 reference to one verified gateway CDR (light-weight)."""

    sequence_number: int
    total_bytes: int
    time_of_first_usage: float
    batch_root: bytes


@dataclass(frozen=True)
class CdrPage:
    """One page of CDR references plus the cursor for the next."""

    session_id: str
    refs: tuple[CdrRef, ...]
    next_cursor: int | None
    total: int


@dataclass(frozen=True)
class LoadedCdr:
    """Phase-2 result: the full record plus its inclusion proof."""

    record: ChargingDataRecord
    batch_root: bytes
    proof: tuple[tuple[bool, bytes], ...]
    proof_ok: bool


@dataclass
class _SessionLedger:
    """Everything the verifier has accepted for one session."""

    settlements: dict[int, SettledCycle] = field(default_factory=dict)
    poc_verdicts: dict[int, VerificationResult] = field(
        default_factory=dict
    )
    #: (record, root of the batch that attested it), in arrival order.
    records: list[tuple[ChargingDataRecord, bytes]] = field(
        default_factory=list
    )


class VerifierService:
    """Continuously verifies the charging service's output stream."""

    def __init__(
        self,
        edge_key: PublicKey,
        operator_key: PublicKey,
        loss_weight: float,
        cache_entries: int = 256,
        settlement_window: float | None = None,
    ) -> None:
        self.edge_key = edge_key
        self.operator_key = operator_key
        self.loss_weight = loss_weight
        self._poc_verifier = PublicVerifier(
            settlement_window=settlement_window
        )
        self.cache = VerificationCache(cache_entries)
        self._proofs: dict[
            bytes, dict[int, tuple[tuple[bool, bytes], ...]]
        ] = {}
        self._batch_payloads: dict[bytes, list[bytes]] = {}
        self._sessions: dict[str, _SessionLedger] = {}
        #: cycle indices with at least one verified claim batch.
        self._attested_cycles: set[int] = set()
        self.pocs_verified = 0
        self.pocs_rejected = 0
        self.claim_batches_verified = 0
        self.record_batches_verified = 0
        self.batches_rejected = 0
        self.claims_verified = 0
        self.public_key_ops = 0

    # ------------------------------------------------------------------
    # the accept path (driven by the charging service)

    def accept(self, kind: str, payload: object) -> None:
        """Route one drained core output to its verification path."""
        if kind == "settlement":
            self.accept_settlement(payload)  # type: ignore[arg-type]
        elif kind == "claim_batch":
            self.accept_claim_batch(payload)  # type: ignore[arg-type]
        elif kind == "record_batch":
            self.accept_record_batch(payload)  # type: ignore[arg-type]
        else:
            raise ValueError(f"unknown core output kind: {kind!r}")

    def accept_settlement(
        self, settlement: SettledCycle, presented_at: float | None = None
    ) -> VerificationResult:
        """Algorithm 2 over one settled cycle's PoC."""
        ledger = self._sessions.setdefault(
            settlement.session_id, _SessionLedger()
        )
        ledger.settlements[settlement.cycle.index] = settlement
        plan = DataPlan(
            cycle=settlement.cycle, loss_weight=self.loss_weight
        )
        if settlement.outcome.poc is None:
            result = VerificationResult(False, "negotiation not converged")
        else:
            result = self._poc_verifier.verify(
                settlement.outcome.poc,
                plan,
                self.edge_key,
                self.operator_key,
                presented_at=presented_at,
            )
            self.public_key_ops += 3  # PoC + CDA + inner CDR layers
        ledger.poc_verdicts[settlement.cycle.index] = result
        if result.ok:
            self.pocs_verified += 1
        else:
            self.pocs_rejected += 1
        return result

    def accept_claim_batch(
        self, sealed: SealedClaimBatch
    ) -> VerificationResult:
        """One RSA op (cached by root) for a whole multi-session batch."""
        cached = self.cache.get(sealed.batch.root)
        if cached is None:
            plan = DataPlan(
                cycle=sealed.cycle, loss_weight=self.loss_weight
            )
            result = self._poc_verifier.verify_cdr_batch(
                list(sealed.claims),
                sealed.batch,
                self.operator_key,
                plan,
            )
            self.public_key_ops += 1
            self.cache.put(sealed.batch.root, result.ok)
            ok = result.ok
        else:
            result = VerificationResult(
                cached, "" if cached else "cached rejection"
            )
            ok = cached
        if ok:
            self.claim_batches_verified += 1
            self.claims_verified += sealed.batch.count
            self._attested_cycles.add(sealed.cycle.index)
        else:
            self.batches_rejected += 1
        return result

    def accept_record_batch(
        self, sealed: SealedRecordBatch
    ) -> VerificationResult:
        """Verify a gateway-CDR batch and index it for queries."""
        payloads = [record.to_bytes() for record in sealed.records]
        cached = self.cache.get(sealed.batch.root)
        if cached is None:
            ok = verify_batch(self.operator_key, payloads, sealed.batch)
            self.public_key_ops += 1
            self.cache.put(sealed.batch.root, ok)
        else:
            ok = cached
        if not ok:
            self.batches_rejected += 1
            return VerificationResult(False, "invalid CDR batch signature")
        self.record_batches_verified += 1
        self.claims_verified += sealed.batch.count
        self._batch_payloads[sealed.batch.root] = payloads
        for record in sealed.records:
            session_id = self._session_for_record(record)
            ledger = self._sessions.setdefault(session_id, _SessionLedger())
            ledger.records.append((record, sealed.batch.root))
        return VerificationResult(True)

    def _session_for_record(self, record: ChargingDataRecord) -> str:
        # Gateway CDRs carry the charging id, not the service session
        # id; queries are keyed by the derived app id so both claim and
        # record streams land in the same ledger bucket.
        return f"s{record.charging_id:08x}"

    # ------------------------------------------------------------------
    # query surface

    @property
    def batch_attested_pocs(self) -> int:
        """Verified PoCs whose cycle also carries a verified claim batch."""
        count = 0
        for ledger in self._sessions.values():
            for index, verdict in ledger.poc_verdicts.items():
                if verdict.ok and index in self._attested_cycles:
                    count += 1
        return count

    def session_status(self, session_id: str) -> dict:
        """What the verifier knows about one session."""
        ledger = self._sessions.get(session_id)
        if ledger is None:
            return {"known": False}
        settled = sorted(ledger.settlements)
        return {
            "known": True,
            "settled_cycles": settled,
            "pocs_ok": sum(
                1 for v in ledger.poc_verdicts.values() if v.ok
            ),
            "pocs_rejected": sum(
                1 for v in ledger.poc_verdicts.values() if not v.ok
            ),
            "records_attested": len(ledger.records),
            "last_volume": (
                ledger.settlements[settled[-1]].volume if settled else None
            ),
        }

    def get_poc(self, session_id: str, cycle_index: int | None = None):
        """The verified PoC for a cycle (latest settled by default)."""
        ledger = self._sessions.get(session_id)
        if ledger is None or not ledger.settlements:
            return None
        if cycle_index is None:
            cycle_index = max(ledger.settlements)
        settlement = ledger.settlements.get(cycle_index)
        if settlement is None:
            return None
        return settlement.outcome.poc

    def get_cdrs(
        self, session_id: str, cursor: int = 0, limit: int = 64
    ) -> CdrPage:
        """Phase 1 of two-phase loading: a page of CDR references.

        Large sessions hold thousands of attested records; a page is a
        tuple of light :class:`CdrRef` entries plus the cursor to pass
        back for the next page (``None`` when exhausted).  Fetch full
        records one at a time with :meth:`load_cdr`.
        """
        if limit < 1:
            raise ValueError(f"page limit must be >= 1: {limit}")
        ledger = self._sessions.get(session_id)
        records = ledger.records if ledger is not None else []
        window = records[cursor:cursor + limit]
        refs = tuple(
            CdrRef(
                sequence_number=record.sequence_number,
                total_bytes=record.total_bytes,
                time_of_first_usage=record.time_of_first_usage,
                batch_root=root,
            )
            for record, root in window
        )
        next_cursor = cursor + limit
        return CdrPage(
            session_id=session_id,
            refs=refs,
            next_cursor=next_cursor if next_cursor < len(records) else None,
            total=len(records),
        )

    def load_cdr(
        self, session_id: str, sequence_number: int
    ) -> LoadedCdr | None:
        """Phase 2: one full record plus its Merkle inclusion proof."""
        ledger = self._sessions.get(session_id)
        if ledger is None:
            return None
        for record, root in ledger.records:
            if record.sequence_number == sequence_number:
                proof = self._proof_for(root, record)
                return LoadedCdr(
                    record=record,
                    batch_root=root,
                    proof=proof,
                    proof_ok=verify_merkle_proof(
                        record.to_bytes(), proof, root
                    ),
                )
        return None

    def _proof_for(
        self, root: bytes, record: ChargingDataRecord
    ) -> tuple[tuple[bool, bytes], ...]:
        payloads = self._batch_payloads[root]
        index = payloads.index(record.to_bytes())
        per_root = self._proofs.setdefault(root, {})
        proof = per_root.get(index)
        if proof is None:
            proof = merkle_proof(payloads, index)
            per_root[index] = proof
        return proof

    def stats(self) -> dict:
        """Picklable verification counters for snapshots."""
        return {
            "pocs_verified": self.pocs_verified,
            "pocs_rejected": self.pocs_rejected,
            "batch_attested_pocs": self.batch_attested_pocs,
            "claim_batches_verified": self.claim_batches_verified,
            "record_batches_verified": self.record_batches_verified,
            "batches_rejected": self.batches_rejected,
            "claims_verified": self.claims_verified,
            "public_key_ops": self.public_key_ops,
            "cache": self.cache.stats(),
        }
