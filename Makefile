# Convenience targets for the TLC reproduction.

PYTHON ?= python

.PHONY: install test bench examples figures clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

figures:
	$(PYTHON) -m repro run all

clean:
	rm -rf .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
