"""Setup shim: enables `pip install -e .` on environments without the
``wheel`` package (PEP 660 editable installs need it; the legacy
``setup.py develop`` path does not)."""

from setuptools import setup

setup()
