#!/usr/bin/env python3
"""Online gaming acceleration (§2.2's Tencent use case).

A multiplayer game needs sub-100 ms control latency.  The game SDK asks
the operator's PCRF for a dedicated QCI=7 session; the network then
schedules the game's packets ahead of best-effort traffic in a congested
cell.  The example measures, with and without the acceleration:

- packet delivery through a saturated cell,
- the charging gap on the game's (tiny but premium-priced) volume,
- the QoS-weighted bill.

Run:  python examples/gaming_acceleration.py
"""

from repro.apps.gaming import GamingWorkload
from repro.experiments.report import render_table
from repro.lte.network import LteNetwork, LteNetworkConfig
from repro.net.channel import ChannelConfig
from repro.net.congestion import CongestionConfig
from repro.net.packet import Direction
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams

DURATION = 60.0
BACKGROUND_BPS = 160e6  # a saturated cell


def run_session(accelerated: bool, seed: int = 5) -> dict:
    loop = EventLoop()
    network = LteNetwork(
        loop,
        LteNetworkConfig(
            channel=ChannelConfig(
                rss_dbm=-90.0,
                base_loss_rate=0.01,
                mean_uptime=float("inf"),
            ),
            congestion=CongestionConfig(background_bps=BACKGROUND_BPS),
            use_pcrf=True,
        ),
        RngStreams(seed),
    )
    if accelerated:
        # The game SDK's API call (footnote 2: QCI=3/7 only).
        network.pcrf.request_gaming_session(
            "king-of-glory", qci=7, requested_by="tencent-sdk"
        )

    workload = GamingWorkload(
        loop, network.send_downlink, RngStreams(seed).stream("game")
    )
    workload.start()
    loop.schedule_at(DURATION, workload.stop, label="stop")
    loop.run(until=DURATION + 2.0)

    sent = network.true_downlink_sent()
    received = network.true_downlink_received()
    qci = network.pcrf.qci_for_flow("king-of-glory")
    price = network.pcrf.price_multiplier(qci)
    return {
        "label": "QCI=7 (accelerated)" if accelerated else "QCI=9 (default)",
        "qci": qci,
        "sent": sent,
        "received": received,
        "loss": (sent - received) / sent if sent else 0.0,
        "weighted_volume": network.pcrf.weighted_volume({qci: received}),
        "price_multiplier": price,
    }


def main() -> None:
    default = run_session(accelerated=False)
    accelerated = run_session(accelerated=True)

    print(
        f"King-of-Glory control stream through a saturated cell "
        f"({BACKGROUND_BPS / 1e6:.0f} Mbps background):"
    )
    print(
        render_table(
            [
                "session",
                "QCI",
                "sent B",
                "delivered B",
                "loss",
                "price x",
                "QoS-weighted bill units",
            ],
            [
                [
                    r["label"],
                    r["qci"],
                    r["sent"],
                    r["received"],
                    f"{r['loss']:.1%}",
                    f"{r['price_multiplier']:.1f}",
                    f"{r['weighted_volume'] / 1e6:.3f}",
                ]
                for r in (default, accelerated)
            ],
        )
    )
    print(
        "\nThe dedicated bearer cuts the congestion loss by an order of "
        "magnitude — smooth player control — in exchange for the "
        "premium per-byte rate; TLC then keeps the (now premium-priced) "
        "volume honest."
    )
    assert accelerated["loss"] < default["loss"]


if __name__ == "__main__":
    main()
