#!/usr/bin/env python3
"""Targeted-advertisement use case: roadside webcam streaming over LTE.

The §2.2 scenario: a wireless camera streams images uplink 24x7 to an
edge server that picks billboard ads.  The advertiser pays per byte and
"wants to save the bill and ensure the operator charges faithfully".

This example runs the camera stream through the simulated LTE testbed at
several congestion levels, charges each cycle under legacy 4G/5G and
under TLC, and prices the difference with a rate plan — the advertiser's
actual monetary exposure to the charging gap.

Run:  python examples/targeted_ads_webcam.py
"""

from repro.charging.billing import RatePlan
from repro.charging.policy import ChargingPolicy
from repro.experiments.report import render_table
from repro.experiments.scenario import (
    ChargingScheme,
    ScenarioConfig,
    charge_with_scheme,
    run_scenario,
)

MB = 1_000_000
HOURS_PER_MONTH = 24 * 30


def main() -> None:
    rate_plan = RatePlan(
        price_per_mb=0.01,  # $0.01/MB
        policy=ChargingPolicy(loss_weight=0.5),
    )

    rows = []
    for background_mbps in (0, 100, 140, 160):
        result = run_scenario(
            ScenarioConfig(
                app="webcam-rtsp",
                seed=7,
                cycle_duration=60.0,
                background_bps=background_mbps * 1e6,
            )
        )
        legacy = charge_with_scheme(result, ChargingScheme.LEGACY)
        tlc = charge_with_scheme(result, ChargingScheme.TLC_OPTIMAL)

        # Scale one cycle to a 24x7 month of streaming.
        scale = 3600.0 / result.duration * HOURS_PER_MONTH
        fair_bill = rate_plan.bill_for(result.fair_volume * scale)
        legacy_bill = rate_plan.bill_for(legacy.charged * scale)
        tlc_bill = rate_plan.bill_for(tlc.charged * scale)

        rows.append(
            [
                f"{background_mbps} Mbps",
                f"{result.truth.loss / result.truth.sent:.1%}",
                f"${legacy_bill.total:,.0f}",
                f"${tlc_bill.total:,.0f}",
                f"${fair_bill.total:,.0f}",
                f"${legacy_bill.overbilling_vs(fair_bill):+,.0f}",
                f"${tlc_bill.overbilling_vs(fair_bill):+,.0f}",
            ]
        )

    print("Monthly bill for a 24x7 roadside ad camera (RTSP uplink):")
    print(
        render_table(
            [
                "background",
                "loss",
                "legacy bill",
                "TLC bill",
                "fair bill",
                "legacy error",
                "TLC error",
            ],
            rows,
        )
    )
    print(
        "\nTLC keeps the advertiser's bill within record-measurement "
        "error of the fair volume at every congestion level; legacy "
        "drifts with the loss rate."
    )


if __name__ == "__main__":
    main()
