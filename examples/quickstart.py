#!/usr/bin/env python3
"""Quickstart: negotiate a Proof-of-Charging and verify it publicly.

This walks the whole TLC pipeline at the API level, with no simulation:

1. both parties agree on a data plan (cycle T, lost-data weight c),
2. each generates an RSA-1024 key pair and publishes the public half,
3. after the cycle, they negotiate with their (differing!) usage records
   using the optimal minimax strategy — one round, per Theorem 4,
4. the resulting PoC is verified by an independent third party, and a
   tampered copy is rejected.

Run:  python examples/quickstart.py
"""

from repro.charging.cycle import ChargingCycle
from repro.core.messages import ProofOfCharging
from repro.core.plan import DataPlan
from repro.core.protocol import NegotiationAgent, run_negotiation
from repro.core.records import UsageView
from repro.core.strategies import OptimalStrategy, Role
from repro.core.verifier import PublicVerifier
from repro.crypto.nonces import NonceFactory
from repro.crypto.rsa import generate_keypair
from repro.sim.rng import RngStreams

MB = 1_000_000


def main() -> None:
    rngs = RngStreams(2024)

    # -- setup (§5.3.1): plan agreement + key publication ----------------
    cycle = ChargingCycle(index=0, start=0.0, end=3600.0)
    plan = DataPlan(cycle=cycle, loss_weight=0.5)
    print(f"data plan: cycle={cycle.duration:.0f}s  c={plan.c}")

    edge_keys = generate_keypair(1024, rngs.stream("edge-key"))
    operator_keys = generate_keypair(1024, rngs.stream("operator-key"))
    print("keys: RSA-1024 generated for edge vendor and operator")

    # -- the cycle happened; records disagree because data was lost ------
    # The edge server sent 1000 MB; the device received 930 MB; each
    # party's monitors measure both quantities with ~1% error.
    edge_view = UsageView(
        sent_estimate=1002 * MB, received_estimate=928 * MB
    )
    operator_view = UsageView(
        sent_estimate=997 * MB, received_estimate=931 * MB
    )
    print(
        f"edge records:     sent={edge_view.sent_estimate / MB:.0f}MB "
        f"received={edge_view.received_estimate / MB:.0f}MB"
    )
    print(
        f"operator records: sent={operator_view.sent_estimate / MB:.0f}MB "
        f"received={operator_view.received_estimate / MB:.0f}MB"
    )

    # -- negotiation (§5.3.2): operator initiates ------------------------
    nonce_factory = NonceFactory(rngs.stream("nonces"))
    edge = NegotiationAgent(
        role=Role.EDGE,
        strategy=OptimalStrategy(Role.EDGE, edge_view),
        plan=plan,
        private_key=edge_keys.private,
        peer_public_key=operator_keys.public,
        nonce_factory=nonce_factory,
        app_id="quickstart",
    )
    operator = NegotiationAgent(
        role=Role.OPERATOR,
        strategy=OptimalStrategy(Role.OPERATOR, operator_view),
        plan=plan,
        private_key=operator_keys.private,
        peer_public_key=edge_keys.public,
        nonce_factory=nonce_factory,
        app_id="quickstart",
    )
    outcome = run_negotiation(operator, edge)
    assert outcome.converged, "negotiation did not converge"
    print(
        f"negotiated: x={outcome.volume / MB:.1f}MB in "
        f"{outcome.rounds} round(s), {outcome.messages} messages, "
        f"{outcome.bytes_on_wire} bytes on the wire"
    )

    # -- public verification (§5.3.3) ------------------------------------
    verifier = PublicVerifier()
    result = verifier.verify(
        outcome.poc, plan, edge_keys.public, operator_keys.public
    )
    print(f"verifier: ok={result.ok} volume={result.volume / MB:.1f}MB")
    assert result.ok

    # A forged PoC (inflated volume) must be rejected.
    forged = ProofOfCharging(
        party=outcome.poc.party,
        cycle_start=outcome.poc.cycle_start,
        cycle_end=outcome.poc.cycle_end,
        c=outcome.poc.c,
        volume=outcome.poc.volume * 2,  # the over-bill
        cda=outcome.poc.cda,
        edge_nonce=outcome.poc.edge_nonce,
        operator_nonce=outcome.poc.operator_nonce,
        signature=outcome.poc.signature,  # stale signature
    )
    forged_result = verifier.verify(
        forged, plan, edge_keys.public, operator_keys.public
    )
    print(f"forged PoC: ok={forged_result.ok} ({forged_result.reason})")
    assert not forged_result.ok
    print("quickstart complete")


if __name__ == "__main__":
    main()
