#!/usr/bin/env python3
"""Edge VR offload through intermittent coverage (Figure 4's story).

A VRidge-style 9 Mbps downlink graphical stream crosses an air interface
with ~1.9 s outage bursts.  The gateway keeps charging while the air
interface drops frames, so the record gap accumulates; TLC's negotiation
cancels it at the cycle end.  The example prints a Figure-4-style
time series and then the cycle's charging outcome per scheme.

Run:  python examples/vr_offload_intermittent.py
"""

from repro.experiments.intermittent import intermittent_timeseries
from repro.experiments.report import render_table
from repro.experiments.scenario import (
    ChargingScheme,
    ScenarioConfig,
    charge_with_scheme,
    run_scenario,
)

MB = 1_000_000


def main() -> None:
    print("== 120 s downlink stream through intermittent coverage ==")
    trace = intermittent_timeseries(
        duration=120.0, seed=11, disconnectivity_ratio=0.10
    )
    print(
        f"outages: total {trace.total_outage_time:.1f}s, "
        f"mean burst {trace.mean_outage_duration:.2f}s, "
        f"RLF detaches: {trace.rlf_events}"
    )
    print("time  sent(Mbps)  delivered(Mbps)  gap(MB)  radio")
    for sample in trace.samples[::10]:
        bar = "#" * int(sample.network_rate_mbps * 3)
        radio = "up" if sample.connected else "DOWN"
        print(
            f"{sample.time:5.0f}  {sample.edge_rate_mbps:9.2f}  "
            f"{sample.network_rate_mbps:14.2f}  "
            f"{sample.cumulative_gap_mb:7.2f}  {radio:4s} {bar}"
        )
    print(f"final record gap: {trace.final_gap_mb:.2f} MB\n")

    print("== VR charging cycles, with and without TLC (5 cycles) ==")
    seeds = (1, 2, 3, 4, 5)
    results = [
        run_scenario(
            ScenarioConfig(
                app="vridge",
                seed=seed,
                cycle_duration=60.0,
                disconnectivity_ratio=0.08,
            )
        )
        for seed in seeds
    ]
    rows = []
    for scheme in (
        ChargingScheme.LEGACY,
        ChargingScheme.TLC_RANDOM,
        ChargingScheme.TLC_OPTIMAL,
    ):
        outcomes = [
            charge_with_scheme(result, scheme, seed=seed)
            for result, seed in zip(results, seeds)
        ]
        n = len(outcomes)
        rows.append(
            [
                scheme.value,
                f"{sum(o.charged for o in outcomes) / n / MB:.2f}",
                f"{sum(o.absolute_gap for o in outcomes) / n / MB:.2f}",
                f"{sum(o.gap_ratio for o in outcomes) / n:.2%}",
                f"{sum(o.rounds for o in outcomes) / n:.1f}",
            ]
        )
    fair_mean = sum(r.fair_volume for r in results) / len(results)
    print(f"mean fair volume x̂ = {fair_mean / MB:.2f} MB per cycle")
    print(
        render_table(
            ["scheme", "charged MB", "gap MB", "gap ratio", "rounds"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
