#!/usr/bin/env python3
"""A month of charging receipts, archived and audited (§5.3.4).

Both parties store every cycle's PoC (Algorithm 1 line 9).  Here the
edge vendor archives 24 hourly receipts into a ledger, persists it, and
an MVNO-style verification service audits the whole batch — including a
receipt the operator doctored after the fact and a replayed one.

Run:  python examples/poc_ledger_audit.py
"""

import random

from repro.charging.cycle import CycleSchedule
from repro.core.ledger import PocLedger, VerificationService
from repro.core.messages import ProofOfCharging
from repro.core.plan import DataPlan
from repro.core.protocol import NegotiationAgent, run_negotiation
from repro.core.records import UsageView
from repro.core.strategies import OptimalStrategy, Role
from repro.crypto.nonces import NonceFactory
from repro.crypto.rsa import generate_keypair
from repro.sim.rng import RngStreams

MB = 1_000_000
CYCLES = 24


def main() -> None:
    rngs = RngStreams(404)
    edge_keys = generate_keypair(1024, rngs.stream("edge-key"))
    operator_keys = generate_keypair(1024, rngs.stream("op-key"))
    schedule = CycleSchedule(origin=0.0, duration=3600.0)
    usage_rng = rngs.stream("usage")
    nonce_factory = NonceFactory(rngs.stream("nonces"))

    ledger = PocLedger()
    plans = []
    for index in range(CYCLES):
        cycle = schedule.cycle(index)
        plan = DataPlan(cycle=cycle, loss_weight=0.5)
        plans.append(plan)
        sent = usage_rng.uniform(800, 1200) * MB
        received = sent * usage_rng.uniform(0.90, 0.99)
        view = UsageView(sent_estimate=sent, received_estimate=received)
        edge = NegotiationAgent(
            Role.EDGE,
            OptimalStrategy(Role.EDGE, view),
            plan,
            edge_keys.private,
            operator_keys.public,
            nonce_factory,
            app_id="vr-arcade",
        )
        operator = NegotiationAgent(
            Role.OPERATOR,
            OptimalStrategy(Role.OPERATOR, view),
            plan,
            operator_keys.private,
            edge_keys.public,
            nonce_factory,
            app_id="vr-arcade",
        )
        outcome = run_negotiation(operator, edge)
        assert outcome.converged
        ledger.append("vr-arcade", outcome.poc)

    print(
        f"archived {len(ledger)} receipts, "
        f"{ledger.total_volume('vr-arcade') / 1e9:.2f} GB negotiated total"
    )

    # Persist and reload (a billing dispute months later).
    ledger.save("/tmp/tlc-ledger.jsonl")
    reloaded = PocLedger.load("/tmp/tlc-ledger.jsonl")
    print(f"reloaded {len(reloaded)} receipts from disk")

    # The MVNO audits each cycle against its plan.
    service = VerificationService()
    accepted = 0
    for entry, plan in zip(reloaded.entries_for("vr-arcade"), plans):
        service.register(
            "vr-arcade", plan, edge_keys.public, operator_keys.public
        )
        accepted += service.verify_entry(entry).ok
    print(f"audit: {accepted}/{len(reloaded)} receipts verified")
    assert accepted == CYCLES

    # A doctored receipt (operator inflates a cycle by 20%) is caught.
    victim = reloaded.entries_for("vr-arcade")[5]
    doctored_poc = ProofOfCharging(
        party=victim.poc().party,
        cycle_start=victim.cycle_start,
        cycle_end=victim.cycle_end,
        c=0.5,
        volume=victim.volume * 1.2,
        cda=victim.poc().cda,
        edge_nonce=victim.poc().edge_nonce,
        operator_nonce=victim.poc().operator_nonce,
    ).signed(operator_keys.private)
    doctored = PocLedger()
    entry = doctored.append("vr-arcade", doctored_poc)
    # A court examining this one receipt for the first time (fresh
    # verifier, so the rejection is about the forgery, not a replay).
    court = VerificationService()
    court.register(
        "vr-arcade", plans[5], edge_keys.public, operator_keys.public
    )
    result = court.verify_entry(entry)
    print(f"doctored receipt: ok={result.ok} ({result.reason})")
    assert not result.ok
    assert "recomputed" in result.reason

    # A replayed receipt is caught too: presenting the same receipt
    # twice to one verifier accepts the first copy only.
    replay_check = VerificationService()
    replay_check.register(
        "vr-arcade", plans[7], edge_keys.public, operator_keys.public
    )
    target = reloaded.entries_for("vr-arcade")[7]
    report = replay_check.audit([target, target])
    print(
        f"replay audit: {report.accepted} accepted, "
        f"{report.rejected} rejected ({list(report.rejection_reasons)})"
    )
    assert report.accepted == 1
    assert report.rejected == 1


if __name__ == "__main__":
    main()
