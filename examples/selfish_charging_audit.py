#!/usr/bin/env python3
"""Selfish charging, cross-checks, and tamper-resilient records.

Three demonstrations from §3.3-§5.4:

1. **Selfish operator, legacy charging**: the operator inflates its
   gateway CDRs — legacy 4G/5G has no bound, the edge just pays.
2. **Selfish operator, TLC**: the same inflated claim is caught by the
   edge's cross-check; the negotiation settles within [x̂o, x̂e]
   (Theorem 2's bound) no matter how large the over-claim.
3. **Selfish edge vs. monitors**: the edge under-reports its OS counters
   (strawman 1 falls for it) while the RRC COUNTER CHECK record from the
   hardware modem is unaffected.

Run:  python examples/selfish_charging_audit.py
"""

from repro.charging.cycle import ChargingCycle
from repro.core.cancellation import negotiate
from repro.core.plan import DataPlan
from repro.core.records import UsageView
from repro.core.strategies import (
    MisbehavingStrategy,
    OptimalStrategy,
    RandomSelfishStrategy,
    Role,
)
from repro.lte.network import LteNetwork, LteNetworkConfig
from repro.monitors.device import DeviceApiMonitor
from repro.monitors.tamper import UnderReportTamper, tamper_fraction
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams

MB = 1_000_000


def selfish_operator_demo() -> None:
    print("== 1+2: selfish operator over-claims 40% ==")
    truth_sent, truth_received = 1000 * MB, 930 * MB
    plan = DataPlan(
        cycle=ChargingCycle(index=0, start=0, end=3600), loss_weight=0.5
    )

    # Legacy: the operator bills its (inflated) CDR volume directly.
    inflated = truth_received * 1.40
    print(f"legacy 4G/5G:    edge pays {inflated / MB:.0f}MB (unbounded)")

    # TLC with a mildly selfish operator (pads every record by 6%): the
    # negotiation still converges, and Theorem 2's bound caps the charge
    # at the edge's sent volume.
    edge = OptimalStrategy(
        Role.EDGE,
        UsageView(sent_estimate=truth_sent, received_estimate=truth_received),
    )
    padded_operator = RandomSelfishStrategy(
        Role.OPERATOR,
        UsageView(
            sent_estimate=truth_sent * 1.06,
            received_estimate=truth_received * 1.06,
        ),
        rng=RngStreams(3).stream("op"),
    )
    result = negotiate(edge, padded_operator, plan)
    fair = truth_received + 0.5 * (truth_sent - truth_received)
    print(
        f"TLC (6% padding): converged={result.converged} "
        f"x={result.volume / MB:.0f}MB in {result.rounds} rounds "
        f"(bounded by x̂e={truth_sent / MB:.0f}MB)"
    )
    print(f"fair volume x̂ = {fair / MB:.0f}MB")
    assert result.volume is not None
    assert result.volume <= truth_sent * 1.08  # cross-check tolerance

    # An operator inflating 40% is rejected by the edge's cross-check
    # every round: no agreement, no PoC, no payment.
    greedy_operator = RandomSelfishStrategy(
        Role.OPERATOR,
        UsageView(
            sent_estimate=truth_sent * 1.40,
            received_estimate=truth_received * 1.40,
        ),
        rng=RngStreams(3).stream("op2"),
        overshoot=0.0,
    )
    result = negotiate(edge, greedy_operator, plan, max_rounds=16)
    print(
        f"TLC (40% inflation): converged={result.converged} "
        f"(cross-check rejects every claim; operator is never paid)"
    )

    # A stonewalling operator that rejects everything fares no better.
    wall = MisbehavingStrategy(
        Role.OPERATOR, fixed_claim=5000 * MB, reject_all=True
    )
    result = negotiate(edge, wall, plan, max_rounds=16)
    print(
        f"stonewalling op: converged={result.converged} "
        f"(no PoC, operator is never paid)\n"
    )


def tampered_monitor_demo() -> None:
    print("== 3: selfish edge tampers with the OS counters ==")
    loop = EventLoop()
    rngs = RngStreams(17)
    network = LteNetwork(loop, LteNetworkConfig(), rngs.fork("lte"))
    # The edge device under-reports 40% of its received traffic.
    network.ue.os_stats.install_tamper(
        downlink=UnderReportTamper(fraction=0.60)
    )
    for i in range(2000):
        loop.schedule_at(
            i * 0.01,
            lambda s=i: network.send_downlink(
                Packet(
                    size=1200,
                    flow="vr",
                    direction=Direction.DOWNLINK,
                    created_at=0.0,
                    seq=s,
                )
            ),
            label="traffic",
        )
    loop.run(until=25.0)

    os_monitor = DeviceApiMonitor(network.ue, Direction.DOWNLINK)
    network.enodeb.run_counter_check()
    _, modem_dl = network.ue.modem.totals()
    true_dl = os_monitor.read_true_bytes()
    reported_dl = os_monitor.read_bytes()
    print(f"truly received:           {true_dl:>9d} bytes")
    print(
        f"strawman-1 OS monitor:    {reported_dl:>9d} bytes "
        f"(hides {tamper_fraction(true_dl, reported_dl):.0%})"
    )
    print(
        f"RRC COUNTER CHECK (modem):{modem_dl:>9d} bytes "
        f"(hides {tamper_fraction(true_dl, modem_dl):.0%})"
    )
    assert modem_dl == true_dl, "hardware counters must be tamper-proof"


def dispute_demo() -> None:
    """A court settles an inflated bill against the charging receipt."""
    import random

    from repro.charging.billing import RatePlan
    from repro.core.dispute import DisputeArbiter, Ruling
    from repro.core.protocol import NegotiationAgent, run_negotiation
    from repro.crypto.nonces import NonceFactory
    from repro.crypto.rsa import generate_keypair

    print("\n== 4: billing dispute settled with the PoC ==")
    edge_keys = generate_keypair(1024, random.Random(71))
    operator_keys = generate_keypair(1024, random.Random(72))
    plan = DataPlan(
        cycle=ChargingCycle(index=0, start=0, end=3600), loss_weight=0.5
    )
    view = UsageView(sent_estimate=1000 * MB, received_estimate=930 * MB)
    nonce_factory = NonceFactory(random.Random(73))
    edge_agent = NegotiationAgent(
        Role.EDGE,
        OptimalStrategy(Role.EDGE, view),
        plan,
        edge_keys.private,
        operator_keys.public,
        nonce_factory,
    )
    operator_agent = NegotiationAgent(
        Role.OPERATOR,
        OptimalStrategy(Role.OPERATOR, view),
        plan,
        operator_keys.private,
        edge_keys.public,
        nonce_factory,
    )
    outcome = run_negotiation(operator_agent, edge_agent)
    assert outcome.converged

    arbiter = DisputeArbiter(RatePlan(price_per_mb=0.01))
    fair_amount = arbiter.price(outcome.volume).total
    # The operator nevertheless bills 15% above the negotiated volume.
    inflated_bill = fair_amount * 1.15
    resolution = arbiter.resolve(
        inflated_bill,
        outcome.poc,
        plan,
        edge_keys.public,
        operator_keys.public,
    )
    print(
        f"billed ${inflated_bill:,.2f} vs proven ${fair_amount:,.2f} -> "
        f"{resolution.ruling.value}, refund ${resolution.refund_due:,.2f}"
    )
    assert resolution.ruling is Ruling.OVERBILLED


def main() -> None:
    selfish_operator_demo()
    tampered_monitor_demo()
    dispute_demo()


if __name__ == "__main__":
    main()
