#!/usr/bin/env python3
"""Generic mobile data charging (§8 + Appendix D).

When the server is a generic Internet service (not co-located with the
cellular core), the downlink gains a loss segment the operator never
meters.  TLC still works, but the user can be over-charged by at most
c x (the server-to-core loss) — Appendix D's bound — which still beats
legacy 4G/5G's unbounded over-charging.

This example sweeps the Internet-segment loss and shows the bound.

Run:  python examples/generic_mobile_charging.py
"""

from repro.core.generic import GenericChargingOutcome, GenericPathTruth
from repro.experiments.report import render_table

MB = 1_000_000


def main() -> None:
    c = 0.5
    ran_loss_fraction = 0.06  # the cellular leg loses 6%
    rows = []
    for internet_loss_fraction in (0.0, 0.01, 0.03, 0.08):
        internet_sent = 1000 * MB
        core_received = internet_sent * (1 - internet_loss_fraction)
        device_received = core_received * (1 - ran_loss_fraction)
        truth = GenericPathTruth(
            internet_sent=internet_sent,
            core_received=core_received,
            device_received=device_received,
        )
        outcome = GenericChargingOutcome(truth=truth, c=c)
        rows.append(
            [
                f"{internet_loss_fraction:.0%}",
                f"{outcome.ideal_charged / MB:.1f}",
                f"{outcome.tlc_charged / MB:.1f}",
                f"{outcome.tlc_overcharge / MB:.1f}",
                f"{truth.overcharge_bound(c) / MB:.1f}",
                f"{outcome.legacy_overcharge / MB:.1f}",
            ]
        )
        assert outcome.tlc_overcharge <= truth.overcharge_bound(c) + 1e-6

    print(
        f"Generic downlink charging (c={c}, cellular leg loses "
        f"{ran_loss_fraction:.0%}):"
    )
    print(
        render_table(
            [
                "internet loss",
                "ideal x̂ MB",
                "TLC x̂' MB",
                "TLC overcharge",
                "Appendix D bound",
                "legacy overcharge",
            ],
            rows,
        )
    )
    print(
        "\nTLC's overcharge tracks c x internet-segment loss exactly "
        "(the Appendix D bound); legacy's overcharge is the full "
        "weighted RAN loss regardless."
    )


if __name__ == "__main__":
    main()
