#!/usr/bin/env python3
"""Multi-access edge (§8): a V2X device bonded to two operators.

A vehicle streams sensor data uplink over two operators at once for
coverage.  The edge classifies its traffic per operator, and at cycle
end runs one TLC negotiation with each — so each operator is paid for
exactly what it carried, even though one of them has a much lossier
radio leg.

Run:  python examples/multi_operator_v2x.py
"""

from repro.charging.policy import ChargingPolicy
from repro.experiments.report import render_table
from repro.lte.network import LteNetworkConfig
from repro.multiop.coordinator import MultiAccessEdge, RoutingPolicy
from repro.net.channel import ChannelConfig
from repro.net.packet import Direction, Packet
from repro.sim.events import EventLoop

MB = 1_000_000


def operator_config(rss: float, base_loss: float) -> LteNetworkConfig:
    return LteNetworkConfig(
        channel=ChannelConfig(
            rss_dbm=rss, base_loss_rate=base_loss, mean_uptime=float("inf")
        ),
        policy=ChargingPolicy(loss_weight=0.5),
    )


def main() -> None:
    loop = EventLoop()
    edge = MultiAccessEdge(
        loop,
        {
            "metro-cell": operator_config(rss=-82.0, base_loss=0.01),
            "rural-macro": operator_config(rss=-96.0, base_loss=0.12),
        },
        routing=RoutingPolicy.ROUND_ROBIN,
        seed=11,
    )

    # Eight sensor flows, alternating across the two operators.
    duration = 30.0
    packet_interval = 0.01
    count = int(duration / packet_interval)
    for i in range(count):
        flow = f"sensor-{i % 8}"
        loop.schedule_at(
            i * packet_interval,
            lambda f=flow, s=i: edge.send(
                Packet(
                    size=800,
                    flow=f,
                    direction=Direction.UPLINK,
                    created_at=0.0,
                    seq=s,
                )
            ),
        )
    loop.run(until=duration + 2.0)

    outcomes = edge.settle_cycle(duration, Direction.UPLINK)
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.operator,
                f"{outcome.truth.sent / MB:.2f}",
                f"{outcome.truth.received / MB:.2f}",
                f"{outcome.truth.loss / max(outcome.truth.sent, 1):.1%}",
                f"{outcome.negotiated / MB:.2f}",
                outcome.rounds,
            ]
        )
    print("Per-operator TLC settlement for the V2X uplink:")
    print(
        render_table(
            [
                "operator",
                "sent MB",
                "delivered MB",
                "loss",
                "TLC charge MB",
                "rounds",
            ],
            rows,
        )
    )
    total = edge.total_negotiated(outcomes)
    print(f"\ntotal bill across operators: {total / MB:.2f} MB-equivalent")
    print(
        "each operator is charged per its own delivery record; the lossy "
        "leg cannot bill for bytes it never delivered."
    )


if __name__ == "__main__":
    main()
